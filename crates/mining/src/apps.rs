//! The representative graph mining applications of §II-A / Table I, plus
//! general subgraph matching (the problem class the paper reduces CF to).

use crate::counts::PatternCounts;
use crate::ecm::EcmApp;
use crate::embedding::{Embedding, MAX_EMBEDDING};
use crate::pattern::{Pattern, PatternInterner};
use gramer_graph::{CsrGraph, Label};

fn check_size(k: usize) -> Result<(), String> {
    if (2..=MAX_EMBEDDING).contains(&k) {
        Ok(())
    } else {
        Err(format!(
            "embedding size {k} outside supported range 2..={MAX_EMBEDDING}"
        ))
    }
}

/// `k`-CF: find all `k`-vertex complete subgraphs (Table I: `Filter =
/// IsClique`, `Process = (P(e), 1)`).
///
/// Because every induced subgraph of a clique is a clique, filtering
/// non-cliques also prunes their entire extension subtree — the reason CF
/// stays tractable on large graphs.
///
/// # Example
///
/// ```
/// use gramer_graph::generate;
/// use gramer_mining::{apps::CliqueFinding, DfsEnumerator};
///
/// let g = generate::complete(6);
/// let r = DfsEnumerator::new(&g).run(&CliqueFinding::new(4).unwrap());
/// assert_eq!(r.total_at(4), 15); // C(6,4)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliqueFinding {
    k: usize,
}

impl CliqueFinding {
    /// Creates a `k`-clique finder.
    ///
    /// # Errors
    ///
    /// Returns an error if `k` is outside `2..=MAX_EMBEDDING`.
    pub fn new(k: usize) -> Result<Self, String> {
        check_size(k)?;
        Ok(CliqueFinding { k })
    }

    /// The clique size `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl EcmApp for CliqueFinding {
    fn name(&self) -> String {
        format!("{}-CF", self.k)
    }

    fn max_vertices(&self) -> usize {
        self.k
    }

    fn filter(&self, _graph: &CsrGraph, emb: &Embedding) -> bool {
        emb.is_clique()
    }

    fn process(
        &self,
        graph: &CsrGraph,
        emb: &Embedding,
        interner: &mut PatternInterner,
        counts: &mut PatternCounts,
    ) {
        // Only the target size contributes to the output set.
        if emb.len() == self.k {
            let id = interner.intern(graph, emb);
            counts.add(emb.len(), id, 1);
        }
    }
}

/// `k`-MC: count the occurrences of **all** patterns with up to `k`
/// vertices (Table I: both filters always true).
///
/// The paper's `k`-MC reports `k`-vertex pattern counts; we record every
/// intermediate size ≥ 3 as well, which is free and lets tests cross-check
/// smaller motifs. (2-vertex embeddings all share the single edge pattern
/// and are of no analytic interest — §IV-C, footnote 2.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotifCounting {
    k: usize,
}

impl MotifCounting {
    /// Creates a motif counter for patterns of up to `k` vertices.
    ///
    /// # Errors
    ///
    /// Returns an error if `k` is outside `2..=MAX_EMBEDDING`.
    pub fn new(k: usize) -> Result<Self, String> {
        check_size(k)?;
        Ok(MotifCounting { k })
    }

    /// The maximum motif size `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl EcmApp for MotifCounting {
    fn name(&self) -> String {
        format!("{}-MC", self.k)
    }

    fn max_vertices(&self) -> usize {
        self.k
    }

    fn process(
        &self,
        graph: &CsrGraph,
        emb: &Embedding,
        interner: &mut PatternInterner,
        counts: &mut PatternCounts,
    ) {
        if emb.len() >= 3 {
            let id = interner.intern(graph, emb);
            counts.add(emb.len(), id, 1);
        }
    }
}

/// FSM-`t`: find the 3-vertex (labeled) patterns occurring at least `t`
/// times, where occurrence = number of matched embeddings (§II-A).
///
/// Patterns are unknown a priori, so the engine enumerates everything up
/// to 3 vertices, counts per canonical labeled pattern, and
/// [`FrequentSubgraphMining::frequent_patterns`] applies the threshold.
/// The `Aggregate_filter` hook reports whether a pattern is still above
/// threshold and is honoured by the level-synchronous BFS engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrequentSubgraphMining {
    threshold: u64,
}

impl FrequentSubgraphMining {
    /// Pattern size mined by FSM in the paper's Table III (3-vertex).
    pub const PATTERN_SIZE: usize = 3;

    /// Creates an FSM instance with occurrence threshold `threshold`.
    pub fn new(threshold: u64) -> Self {
        FrequentSubgraphMining { threshold }
    }

    /// The occurrence threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Extracts the frequent patterns from a finished mining result.
    pub fn frequent_patterns<'r>(
        &self,
        result: &'r crate::MiningResult,
    ) -> Vec<(&'r Pattern, u64)> {
        let mut v: Vec<_> = result
            .counts
            .sorted()
            .into_iter()
            .filter(|&(s, _, c)| s == Self::PATTERN_SIZE && c >= self.threshold)
            .map(|(_, p, c)| (result.interner.pattern(p), c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

impl EcmApp for FrequentSubgraphMining {
    fn name(&self) -> String {
        format!("FSM-{}", self.threshold)
    }

    fn max_vertices(&self) -> usize {
        Self::PATTERN_SIZE
    }

    fn aggregate_filter(&self, pattern_count: u64) -> bool {
        pattern_count >= self.threshold
    }

    fn process(
        &self,
        graph: &CsrGraph,
        emb: &Embedding,
        interner: &mut PatternInterner,
        counts: &mut PatternCounts,
    ) {
        if emb.len() >= 2 {
            let id = interner.intern(graph, emb);
            counts.add(emb.len(), id, 1);
        }
    }

    fn uses_aggregation(&self) -> bool {
        true
    }
}

/// Subgraph matching: count the embeddings isomorphic to one *given*
/// pattern.
///
/// §II-A notes that applications with foreknown patterns (like CF) "can
/// thus be simply regarded as a subgraph matching problem"; this app is
/// that generalisation. Enumeration is pruned soundly: a partial
/// embedding is extended only while its canonical pattern is an induced
/// connected sub-pattern of the target (every prefix of a canonical
/// addition order induces such a sub-pattern, so no match is lost).
///
/// # Example
///
/// ```
/// use gramer_graph::generate;
/// use gramer_mining::{apps::SubgraphMatching, DfsEnumerator, Pattern};
///
/// // Count wedges (paths of length 2) in a star: C(5, 2) = 10.
/// let wedge = Pattern::from_parts(3, &[0; 3], &[0b110, 0b001, 0b001]);
/// let app = SubgraphMatching::new(wedge).unwrap();
/// let g = generate::star(5);
/// let r = DfsEnumerator::new(&g).run(&app);
/// assert_eq!(app.matches(&r), 10);
/// ```
#[derive(Debug, Clone)]
pub struct SubgraphMatching {
    target: Pattern,
    /// Canonical patterns of every connected induced subgraph of the
    /// target, grouped by size — the pruning frontier.
    admissible: Vec<std::collections::HashSet<Pattern>>,
}

impl SubgraphMatching {
    /// Creates a matcher for `target`.
    ///
    /// # Errors
    ///
    /// Returns an error if the target has fewer than 2 vertices or is
    /// disconnected (disconnected patterns cannot be matched by connected
    /// embedding extension).
    pub fn new(target: Pattern) -> Result<Self, String> {
        let n = target.num_vertices();
        check_size(n)?;
        // Enumerate the target's own connected induced subgraphs by
        // subset; n ≤ 8 so 2^n is trivial.
        let mut admissible: Vec<std::collections::HashSet<Pattern>> =
            (0..=n).map(|_| Default::default()).collect();
        for mask in 1u32..(1 << n) {
            let verts: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            let k = verts.len();
            if k < 2 {
                continue;
            }
            let mut adj = [0u8; MAX_EMBEDDING];
            for (a, &i) in verts.iter().enumerate() {
                for (b, &j) in verts.iter().enumerate() {
                    if a != b && target.has_edge(i, j) {
                        adj[a] |= 1 << b;
                    }
                }
            }
            // Connectivity of the induced subset.
            let mut seen = 1u8;
            let mut frontier = 1u8;
            while frontier != 0 {
                let mut next = 0u8;
                for (a, &row) in adj.iter().enumerate().take(k) {
                    if frontier & (1 << a) != 0 {
                        next |= row;
                    }
                }
                frontier = next & !seen;
                seen |= next;
            }
            if (seen.count_ones() as usize) < k {
                continue;
            }
            let labels: Vec<Label> = verts.iter().map(|&i| target.labels()[i]).collect();
            admissible[k].insert(Pattern::from_parts(k, &labels, &adj[..k]));
        }
        if admissible[n].is_empty() {
            return Err("target pattern is disconnected".into());
        }
        Ok(SubgraphMatching { target, admissible })
    }

    /// The target pattern.
    pub fn target(&self) -> &Pattern {
        &self.target
    }

    /// Number of embeddings matching the target in a finished result.
    pub fn matches(&self, result: &crate::MiningResult) -> u64 {
        result.count_where(self.target.num_vertices(), |p| p == &self.target)
    }
}

impl EcmApp for SubgraphMatching {
    fn name(&self) -> String {
        format!(
            "match-{}v{}e",
            self.target.num_vertices(),
            self.target.edge_count()
        )
    }

    fn max_vertices(&self) -> usize {
        self.target.num_vertices()
    }

    fn filter(&self, graph: &CsrGraph, emb: &Embedding) -> bool {
        // Admit only embeddings whose pattern can still grow into the
        // target. Canonicalisation per embedding is memoised at the
        // MiningResult level for Process; here the embedding is small, so
        // compute directly.
        let p = Pattern::of_embedding(graph, emb);
        self.admissible[emb.len()].contains(&p)
    }

    fn process(
        &self,
        graph: &CsrGraph,
        emb: &Embedding,
        interner: &mut PatternInterner,
        counts: &mut PatternCounts,
    ) {
        if emb.len() == self.target.num_vertices() {
            let id = interner.intern(graph, emb);
            counts.add(emb.len(), id, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfsEnumerator;
    use gramer_graph::generate;

    #[test]
    fn cf_counts_cliques_in_complete_graph() {
        let g = generate::complete(7);
        for k in 3..=5 {
            let r = DfsEnumerator::new(&g).run(&CliqueFinding::new(k).unwrap());
            let expected = [0u64, 0, 0, 35, 35, 21][k]; // C(7,k)
            assert_eq!(r.total_at(k), expected, "k={k}");
        }
    }

    #[test]
    fn cf_zero_on_triangle_free_graph() {
        let g = generate::cycle(8);
        let r = DfsEnumerator::new(&g).run(&CliqueFinding::new(3).unwrap());
        assert_eq!(r.total_at(3), 0);
    }

    #[test]
    fn mc_motifs_of_cycle() {
        // C6: 6 wedges (P3), 6 induced P4, no triangles/cliques.
        let g = generate::cycle(6);
        let r = DfsEnumerator::new(&g).run(&MotifCounting::new(4).unwrap());
        assert_eq!(r.total_at(3), 6);
        assert_eq!(r.count_where(3, |p| p.is_clique()), 0);
        assert_eq!(r.total_at(4), 6);
        assert_eq!(r.distinct_patterns_at(4), 1);
    }

    #[test]
    fn mc_star_wedges() {
        let g = generate::star(6);
        let r = DfsEnumerator::new(&g).run(&MotifCounting::new(3).unwrap());
        assert_eq!(r.total_at(3), 15); // C(6,2) wedges through the hub
    }

    #[test]
    fn fsm_threshold_filters() {
        // K4 with all labels equal: one triangle pattern occurring 4 times.
        let g = generate::relabel(&generate::complete(4), vec![1, 1, 1, 1]);
        let app = FrequentSubgraphMining::new(3);
        let r = DfsEnumerator::new(&g).run(&app);
        let frequent = app.frequent_patterns(&r);
        assert_eq!(frequent.len(), 1);
        assert_eq!(frequent[0].1, 4);
        // A threshold above the count finds nothing.
        let app_hi = FrequentSubgraphMining::new(5);
        assert!(app_hi.frequent_patterns(&r).is_empty());
    }

    #[test]
    fn fsm_labels_split_patterns() {
        // Two triangles with different label compositions.
        let mut b = gramer_graph::GraphBuilder::new();
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v);
        }
        b.labels(vec![1, 1, 1, 1, 1, 2]);
        let g = b.build().unwrap();
        let app = FrequentSubgraphMining::new(1);
        let r = DfsEnumerator::new(&g).run(&app);
        // Patterns: (1,1,1)-triangle and (1,1,2)-triangle.
        assert_eq!(app.frequent_patterns(&r).len(), 2);
    }

    #[test]
    fn matching_triangle_equals_clique_finding() {
        let g = generate::chung_lu(120, 360, 2.5, 4);
        let triangle = Pattern::from_parts(3, &[0; 3], &[0b110, 0b101, 0b011]);
        let matcher = SubgraphMatching::new(triangle).unwrap();
        let r = DfsEnumerator::new(&g).run(&matcher);
        let cf = DfsEnumerator::new(&g).run(&CliqueFinding::new(3).unwrap());
        assert_eq!(matcher.matches(&r), cf.total_at(3));
    }

    #[test]
    fn matching_agrees_with_motif_census() {
        // For every 4-vertex pattern the census finds, a direct match
        // must return the same count — and with no more candidates than
        // unpruned 4-MC.
        let g = generate::chung_lu(80, 240, 2.5, 9);
        let mc = DfsEnumerator::new(&g).run(&MotifCounting::new(4).unwrap());
        for (size, pid, count) in mc.counts.sorted() {
            if size != 4 {
                continue;
            }
            let target = *mc.interner.pattern(pid);
            let matcher = SubgraphMatching::new(target).unwrap();
            let r = DfsEnumerator::new(&g).run(&matcher);
            assert_eq!(matcher.matches(&r), count, "pattern {target:?}");
            assert!(r.candidates_examined <= mc.candidates_examined);
        }
    }

    #[test]
    fn matching_prunes_impossible_branches() {
        // Matching a path in a clique-heavy graph prunes triangles early:
        // fewer accepted embeddings than plain MC.
        let g = generate::complete(10);
        let p4 = Pattern::from_parts(4, &[0; 4], &[0b0010, 0b0101, 0b1010, 0b0100]);
        let matcher = SubgraphMatching::new(p4).unwrap();
        let r = DfsEnumerator::new(&g).run(&matcher);
        // K10 contains no induced P4 at all; pruning kicks in at size 3
        // (no induced wedge exists either).
        assert_eq!(matcher.matches(&r), 0);
        assert_eq!(r.embeddings, g.num_edges() as u64);
    }

    #[test]
    fn labeled_matching_respects_labels() {
        let mut b = gramer_graph::GraphBuilder::new();
        for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
            b.add_edge(u, v);
        }
        b.labels(vec![1, 2, 1, 1, 1, 1]);
        let g = b.build().unwrap();
        // Wedge with center label 2.
        let wedge_2 = Pattern::from_parts(3, &[2, 1, 1], &[0b110, 0b001, 0b001]);
        let m = SubgraphMatching::new(wedge_2).unwrap();
        let r = DfsEnumerator::new(&g).run(&m);
        assert_eq!(m.matches(&r), 1);
        // Same shape, all-1 labels: matches the other wedge only.
        let wedge_1 = Pattern::from_parts(3, &[1, 1, 1], &[0b110, 0b001, 0b001]);
        let m1 = SubgraphMatching::new(wedge_1).unwrap();
        let r1 = DfsEnumerator::new(&g).run(&m1);
        assert_eq!(m1.matches(&r1), 1);
    }

    #[test]
    fn disconnected_target_rejected() {
        let two_edges = Pattern::from_parts(4, &[0; 4], &[0b0010, 0b0001, 0b1000, 0b0100]);
        assert!(SubgraphMatching::new(two_edges).is_err());
    }

    #[test]
    fn size_validation() {
        assert!(CliqueFinding::new(1).is_err());
        assert!(CliqueFinding::new(9).is_err());
        assert!(MotifCounting::new(8).is_ok());
    }

    #[test]
    fn names_match_paper_convention() {
        assert_eq!(CliqueFinding::new(5).unwrap().name(), "5-CF");
        assert_eq!(MotifCounting::new(3).unwrap().name(), "3-MC");
        assert_eq!(FrequentSubgraphMining::new(2000).name(), "FSM-2000");
    }
}
