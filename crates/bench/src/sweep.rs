//! The experiment-sweep runner: executes independent simulation points in
//! parallel, survives failing points, and serializes the whole sweep to a
//! stable JSON artifact.
//!
//! Every `fig*`/`table*` binary declares its grid of
//! `(dataset, app, config)` points as a [`Sweep`], then calls
//! [`Sweep::execute`]. The runner:
//!
//! 1. applies the `--filter` substring to the `dataset/app/config` ids;
//! 2. executes the remaining points on a work-queue thread pool
//!    (`--jobs N`, std threads + channels, no external dependencies) —
//!    host-side parallelism only, so simulated results are unaffected;
//! 3. **quarantines failures**: each point runs under
//!    `std::panic::catch_unwind`, so a panicking or erroring point becomes
//!    a structured [`PointStatus::Failed`] record instead of tearing down
//!    the whole sweep; `--max-retries N` re-runs failed points with
//!    exponential backoff before recording the failure;
//! 4. **watches the clock**: with `--point-timeout SECS` a monitor thread
//!    cancels any point that exceeds its wall-clock budget through the
//!    cooperative [`gramer::progress`] token (the simulator ticks once per
//!    scheduled event), recording it as [`PointStatus::TimedOut`];
//! 5. **journals completions**: each finished point is appended to a
//!    crash-safe JSONL journal (`results/.journal/<sweep>.jsonl`,
//!    write-temp-then-rename, fsync'd), so `--resume` can replay completed
//!    points after a crash or SIGKILL and still emit byte-identical
//!    `points` data;
//! 6. re-assembles results in **declaration order** regardless of
//!    completion order, making the JSON point data byte-identical across
//!    `--jobs` settings;
//! 7. logs per-point progress to stderr (stdout stays clean for tables);
//! 8. writes `results/BENCH_<name>.json` (override with `--json PATH`):
//!    deterministic point data + a merged summary, with volatile
//!    host-side timing and peak-RSS metadata quarantined under `"host"`.
//!
//! The schema is hand-rolled on [`gramer::json::JsonValue`] and versioned
//! via `schema_version`; see `EXPERIMENTS.md` for the layout and the
//! failure semantics (statuses, exit codes, journal format).

use crate::SweepArgs;
use gramer::json::JsonValue;
use gramer::progress::{self, ProgressToken};
use gramer::{supervise, ReportSummary, RunReport, SimError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// What one sweep point produces: an optional full simulator report plus
/// named scalar/structured metrics for the bin's table and the JSON file.
#[derive(Debug, Default)]
pub struct PointOutput {
    /// Full simulator report, when the point ran the GRAMER simulator.
    pub report: Option<RunReport>,
    /// Named metrics in insertion order (serialized as a JSON object).
    pub metrics: Vec<(String, JsonValue)>,
    /// The report as raw JSON, for records replayed from a journal (the
    /// in-memory [`RunReport`] is not reconstructible from its JSON).
    replayed_report: Option<JsonValue>,
}

impl PointOutput {
    /// An empty output, to be filled with [`PointOutput::metric`] calls.
    pub fn new() -> Self {
        PointOutput::default()
    }

    /// Wraps a simulator report (its JSON lands under the point's
    /// `"report"` key).
    pub fn from_report(report: RunReport) -> Self {
        PointOutput {
            report: Some(report),
            metrics: Vec::new(),
            replayed_report: None,
        }
    }

    /// Appends a named metric (builder style).
    pub fn metric(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.metrics.push((key.to_string(), value.into()));
        self
    }

    /// The report as JSON: the live report when the point ran in this
    /// process, the journaled JSON when it was replayed by `--resume`.
    fn report_json(&self) -> JsonValue {
        match (&self.report, &self.replayed_report) {
            (Some(r), _) => r.to_json_value(),
            (None, Some(j)) => j.clone(),
            (None, None) => JsonValue::Null,
        }
    }
}

/// Conversion of a point closure's return value into the runner's
/// `Result`. Implemented for plain [`PointOutput`] (infallible points stay
/// ergonomic) and for `Result<PointOutput, E>` for any error convertible
/// into [`SimError`].
pub trait IntoPointResult {
    /// Converts into the canonical point result.
    fn into_point_result(self) -> Result<PointOutput, SimError>;
}

impl IntoPointResult for PointOutput {
    fn into_point_result(self) -> Result<PointOutput, SimError> {
        Ok(self)
    }
}

impl<E: Into<SimError>> IntoPointResult for Result<PointOutput, E> {
    fn into_point_result(self) -> Result<PointOutput, SimError> {
        self.map_err(Into::into)
    }
}

/// How a sweep point ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStatus {
    /// The point completed and produced its output.
    Ok,
    /// The point errored or panicked on every attempt.
    Failed,
    /// The point exceeded `--point-timeout` and was cancelled.
    TimedOut,
}

impl PointStatus {
    /// The status tag used in the JSON artifact and journal.
    pub fn as_str(self) -> &'static str {
        match self {
            PointStatus::Ok => "ok",
            PointStatus::Failed => "failed",
            PointStatus::TimedOut => "timed_out",
        }
    }
}

/// A structured description of why a point failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointError {
    /// Machine-readable tag: a [`SimError::kind`] value, `"panic"`, or
    /// `"timeout"`.
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

impl PointError {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("kind", JsonValue::from(self.kind.as_str())),
            ("message", JsonValue::from(self.message.as_str())),
        ])
    }
}

/// One declared `(dataset, app, config)` grid point and its work closure.
pub struct SweepPoint<'a> {
    dataset: String,
    app: String,
    config: String,
    run: Box<dyn Fn() -> Result<PointOutput, SimError> + Send + Sync + 'a>,
}

impl SweepPoint<'_> {
    /// The point's id: `dataset/app/config` (the `--filter` target).
    pub fn id(&self) -> String {
        format!("{}/{}/{}", self.dataset, self.app, self.config)
    }
}

/// A completed point, back in declaration order.
#[derive(Debug)]
pub struct PointRecord {
    /// Dataset label of the point.
    pub dataset: String,
    /// Application label of the point.
    pub app: String,
    /// Configuration label of the point.
    pub config: String,
    /// What the point produced (empty on failure/timeout).
    pub output: PointOutput,
    /// How the point ended.
    pub status: PointStatus,
    /// Number of attempts made (1 unless `--max-retries` re-ran it).
    pub attempts: u32,
    /// Failure description when `status` is not [`PointStatus::Ok`].
    pub error: Option<PointError>,
    /// Host wall-clock seconds this point took (volatile; excluded from
    /// the deterministic JSON point data; `0.0` for replayed records).
    pub wall_seconds: f64,
}

impl PointRecord {
    /// The point's `dataset/app/config` id.
    pub fn id(&self) -> String {
        format!("{}/{}/{}", self.dataset, self.app, self.config)
    }

    /// Whether the point completed ([`PointStatus::Ok`]).
    pub fn is_ok(&self) -> bool {
        self.status == PointStatus::Ok
    }

    /// Looks up a named metric.
    pub fn metric(&self, key: &str) -> Option<&JsonValue> {
        self.output
            .metrics
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A named metric as `f64`.
    pub fn metric_f64(&self, key: &str) -> Option<f64> {
        self.metric(key).and_then(JsonValue::as_f64)
    }

    /// Simulated cycles, when the point carries a report (live or
    /// replayed from the journal).
    pub fn cycles(&self) -> Option<u64> {
        match &self.output.report {
            Some(r) => Some(r.cycles),
            None => self
                .output
                .replayed_report
                .as_ref()?
                .get("cycles")?
                .as_u64(),
        }
    }

    /// The point's simulator report, when it ran in this process
    /// (replayed records only carry the report as JSON).
    pub fn report(&self) -> Option<&RunReport> {
        self.output.report.as_ref()
    }

    /// The deterministic JSON fields of this record, in schema order.
    fn record_fields(&self) -> Vec<(String, JsonValue)> {
        record_fields_raw(
            &self.dataset,
            &self.app,
            &self.config,
            self.status,
            self.attempts,
            self.error.as_ref(),
            &self.output,
        )
    }
}

/// The deterministic JSON fields of one point, in schema order — shared
/// by the artifact's `points` array and the journal lines so that a
/// replayed record serializes byte-identically to a fresh one.
fn record_fields_raw(
    dataset: &str,
    app: &str,
    config: &str,
    status: PointStatus,
    attempts: u32,
    error: Option<&PointError>,
    output: &PointOutput,
) -> Vec<(String, JsonValue)> {
    vec![
        ("dataset".to_string(), JsonValue::from(dataset)),
        ("app".to_string(), JsonValue::from(app)),
        ("config".to_string(), JsonValue::from(config)),
        ("status".to_string(), JsonValue::from(status.as_str())),
        ("attempts".to_string(), JsonValue::from(u64::from(attempts))),
        (
            "error".to_string(),
            error.map_or(JsonValue::Null, PointError::to_json_value),
        ),
        (
            "metrics".to_string(),
            JsonValue::Object(output.metrics.to_vec()),
        ),
        ("report".to_string(), output.report_json()),
    ]
}

/// Execution options for [`Sweep::run_with`] — the programmatic form of
/// the shared CLI flags (see [`SweepArgs`]).
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Substring filter over point ids.
    pub filter: Option<String>,
    /// Replay completed points from the journal instead of re-running.
    pub resume: bool,
    /// Wall-clock budget per point attempt, seconds.
    pub point_timeout: Option<f64>,
    /// Re-run a failed (not timed-out) point up to this many extra times.
    pub max_retries: u32,
    /// Journal path; `None` disables journaling (and `resume`).
    pub journal: Option<PathBuf>,
}

/// A declarative set of independent simulation points.
pub struct Sweep<'a> {
    name: String,
    points: Vec<SweepPoint<'a>>,
}

impl<'a> Sweep<'a> {
    /// An empty sweep named `name` (also names the JSON artifact:
    /// `results/BENCH_<name>.json`).
    pub fn new(name: &str) -> Self {
        Sweep {
            name: name.to_string(),
            points: Vec::new(),
        }
    }

    /// Declares one point. `run` must be independent of every other
    /// point: it may run on any worker thread, in any order. The closure
    /// may return a plain [`PointOutput`] or a
    /// `Result<PointOutput, E: Into<SimError>>`; errors and panics become
    /// structured failure records instead of aborting the sweep.
    pub fn point<R: IntoPointResult>(
        &mut self,
        dataset: &str,
        app: &str,
        config: &str,
        run: impl Fn() -> R + Send + Sync + 'a,
    ) {
        self.points.push(SweepPoint {
            dataset: dataset.to_string(),
            app: app.to_string(),
            config: config.to_string(),
            run: Box::new(move || run().into_point_result()),
        });
    }

    /// Number of declared points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are declared.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Runs the sweep under `args`: honours `--list` (print ids and
    /// exit), `--filter`, `--resume`, `--point-timeout`, `--max-retries`,
    /// executes with `--jobs` workers, journals completed points, and
    /// writes the JSON artifact. This is the entry point the bins use;
    /// pass the result to [`crate::finish`] for the failure-aware exit
    /// code.
    pub fn execute(self, args: &SweepArgs) -> SweepResult {
        if args.list {
            for p in self.filtered(args.filter.as_deref()) {
                println!("{}", p.id());
            }
            std::process::exit(0);
        }
        crate::set_metrics_enabled(args.metrics);
        crate::set_engine_overrides(args.epoch, args.sim_threads, args.memo);
        if let Err(e) = crate::set_artifact_cache(args.artifact_cache.as_deref()) {
            eprintln!(
                "[{}] warning: --artifact-cache disabled ({e}); preprocessing inline",
                self.name
            );
        }
        let json_path = args
            .json
            .clone()
            .unwrap_or_else(|| Path::new("results").join(format!("BENCH_{}.json", self.name)));
        let journal_path = args.journal.clone().unwrap_or_else(|| {
            Path::new("results")
                .join(".journal")
                .join(format!("{}.jsonl", self.name))
        });
        let opts = SweepOptions {
            jobs: args.jobs,
            filter: args.filter.clone(),
            resume: args.resume,
            point_timeout: args.point_timeout,
            max_retries: args.max_retries,
            journal: Some(journal_path),
        };
        let result = self.run_with(&opts);
        match result.write_json(&json_path) {
            Ok(()) => eprintln!("[{}] wrote {}", result.name, json_path.display()),
            Err(e) => eprintln!(
                "[{}] could not write {}: {e}",
                result.name,
                json_path.display()
            ),
        }
        result
    }

    /// Pure execution with default fault-tolerance options (no journal,
    /// no timeout, no retries): runs the filtered points on `jobs`
    /// workers and returns records in declaration order.
    pub fn run(self, jobs: usize, filter: Option<&str>) -> SweepResult {
        self.run_with(&SweepOptions {
            jobs,
            filter: filter.map(str::to_string),
            ..SweepOptions::default()
        })
    }

    /// Full execution under explicit [`SweepOptions`] (no JSON artifact,
    /// no process exit).
    pub fn run_with(self, opts: &SweepOptions) -> SweepResult {
        let name = self.name;
        let points: Vec<SweepPoint<'a>> = {
            let filter = opts.filter.as_deref();
            let matches = |p: &SweepPoint<'_>| filter.is_none_or(|f| p.id().contains(f));
            self.points.into_iter().filter(|p| matches(p)).collect()
        };
        let started = Instant::now();

        // Journal bookkeeping: load previously completed points when
        // resuming, and keep the journal handle for appends.
        let mut journal = opts.journal.as_ref().map(|p| Journal::open(p));
        let replayed: Vec<Option<PointRecord>> = {
            let completed = if opts.resume {
                journal
                    .as_ref()
                    .map(Journal::completed_by_id)
                    .unwrap_or_default()
            } else {
                Default::default()
            };
            points
                .iter()
                .map(|p| completed.get(&p.id()).map(|entry| replay_record(p, entry)))
                .collect()
        };

        // Indices still to run (everything not replayed).
        let todo: Vec<usize> = replayed
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(i, _)| i)
            .collect();
        let n_total = points.len();
        let n_todo = todo.len();
        let n_replayed = n_total - n_todo;
        if n_replayed > 0 {
            eprintln!("[{name}] resuming: {n_replayed}/{n_total} points replayed from journal");
        }
        let jobs = opts.jobs.max(1).min(n_todo.max(1));

        let next = AtomicUsize::new(0);
        let stop_watchdog = AtomicBool::new(false);
        // One watch slot per worker: (token, wall-clock deadline).
        let watch_slots: Vec<Mutex<Option<(ProgressToken, Instant)>>> =
            (0..jobs).map(|_| Mutex::new(None)).collect();
        let (tx, rx) = mpsc::channel::<(usize, Completed)>();
        let mut outputs: Vec<Option<Completed>> = Vec::new();
        outputs.resize_with(n_total, || None);

        std::thread::scope(|scope| {
            let points = &points;
            let todo = &todo;
            let next = &next;
            let watch_slots = &watch_slots;
            let stop_watchdog = &stop_watchdog;
            for w in 0..jobs {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= n_todo {
                        break;
                    }
                    let i = todo[k];
                    let t0 = Instant::now();
                    let (status, attempts, error, output) = run_point(
                        &points[i],
                        opts.point_timeout,
                        opts.max_retries,
                        &watch_slots[w],
                    );
                    let completed = Completed {
                        output,
                        status,
                        attempts,
                        error,
                        secs: t0.elapsed().as_secs_f64(),
                    };
                    // The receiver only disconnects if the collector
                    // panicked; nothing useful to do with the result then.
                    let _ = tx.send((i, completed));
                });
            }
            drop(tx);

            // Watchdog: cancel any registered point past its deadline.
            if opts.point_timeout.is_some() {
                scope.spawn(move || {
                    while !stop_watchdog.load(Ordering::Relaxed) {
                        for slot in watch_slots {
                            if let Some((token, deadline)) =
                                slot.lock().unwrap_or_else(|e| e.into_inner()).as_ref()
                            {
                                if Instant::now() >= *deadline {
                                    token.cancel();
                                }
                            }
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                });
            }

            // Collect on this thread so progress lines never interleave
            // and the journal has a single writer.
            let mut done = 0usize;
            let mut journal_dead = false;
            while let Ok((i, completed)) = rx.recv() {
                done += 1;
                let state = match completed.status {
                    PointStatus::Ok => String::new(),
                    other => format!(", {}", other.as_str()),
                };
                eprintln!(
                    "[{name}] {done}/{n_todo} {} ({:.2}s, jobs={jobs}{state})",
                    points[i].id(),
                    completed.secs,
                );
                if let Some(j) = journal.as_mut() {
                    if let Err(e) = j.append(&journal_entry_for(&points[i], &completed)) {
                        eprintln!("[{name}] journal write failed: {e}");
                        // Stop retrying a dead journal (full disk etc.).
                        journal_dead = true;
                    }
                }
                if journal_dead {
                    journal = None;
                }
                outputs[i] = Some(completed);
            }
            stop_watchdog.store(true, Ordering::Relaxed);
        });

        let records = points
            .into_iter()
            .zip(replayed)
            .zip(outputs)
            .map(|((p, replay), slot)| match (replay, slot) {
                (Some(r), _) => r,
                (None, Some(c)) => PointRecord {
                    dataset: p.dataset,
                    app: p.app,
                    config: p.config,
                    output: c.output,
                    status: c.status,
                    attempts: c.attempts,
                    error: c.error,
                    wall_seconds: c.secs,
                },
                (None, None) => unreachable!("every queued point sends exactly one result"),
            })
            .collect();

        SweepResult {
            name,
            jobs,
            records,
            wall_seconds: started.elapsed().as_secs_f64(),
        }
    }

    fn filtered<'s>(&'s self, filter: Option<&'s str>) -> impl Iterator<Item = &'s SweepPoint<'a>> {
        self.points
            .iter()
            .filter(move |p| filter.is_none_or(|f| p.id().contains(f)))
    }
}

/// A worker's finished point, sent back to the collector thread.
struct Completed {
    output: PointOutput,
    status: PointStatus,
    attempts: u32,
    error: Option<PointError>,
    secs: f64,
}

/// The journal line for a freshly completed point: the deterministic
/// record fields plus the point id the replayer keys on.
fn journal_entry_for(point: &SweepPoint<'_>, c: &Completed) -> JsonValue {
    let mut fields = vec![("id".to_string(), JsonValue::from(point.id()))];
    fields.extend(record_fields_raw(
        &point.dataset,
        &point.app,
        &point.config,
        c.status,
        c.attempts,
        c.error.as_ref(),
        &c.output,
    ));
    JsonValue::Object(fields)
}

/// Replays a journaled completion into a [`PointRecord`].
fn replay_record(point: &SweepPoint<'_>, entry: &JsonValue) -> PointRecord {
    let metrics = match entry.get("metrics") {
        Some(JsonValue::Object(pairs)) => pairs.clone(),
        _ => Vec::new(),
    };
    let replayed_report = match entry.get("report") {
        Some(JsonValue::Null) | None => None,
        Some(other) => Some(other.clone()),
    };
    let attempts = entry
        .get("attempts")
        .and_then(JsonValue::as_u64)
        .unwrap_or(1) as u32;
    PointRecord {
        dataset: point.dataset.clone(),
        app: point.app.clone(),
        config: point.config.clone(),
        output: PointOutput {
            report: None,
            metrics,
            replayed_report,
        },
        status: PointStatus::Ok,
        attempts,
        error: None,
        wall_seconds: 0.0,
    }
}

// ---------------------------------------------------------------------------
// Panic quarantine
// ---------------------------------------------------------------------------

/// Outcome of one quarantined attempt.
enum Attempt {
    Ok(PointOutput),
    Failed(PointError),
    Cancelled,
}

/// Runs `f` with panics quarantined through the shared
/// [`gramer::supervise`] implementation (one scoped-hook capture for the
/// sweep runner and the `gramer-serve` daemon): a typed error or panic
/// becomes an [`Attempt::Failed`]; a [`gramer::progress::Cancelled`]
/// unwind (the watchdog's cooperative cancellation) becomes
/// [`Attempt::Cancelled`].
fn run_quarantined(f: impl FnOnce() -> Result<PointOutput, SimError>) -> Attempt {
    match supervise::run_quarantined(f) {
        supervise::Outcome::Ok(output) => Attempt::Ok(output),
        supervise::Outcome::Err(e) => Attempt::Failed(PointError {
            kind: e.kind().to_string(),
            message: e.to_string(),
        }),
        supervise::Outcome::Panicked(message) => Attempt::Failed(PointError {
            kind: "panic".to_string(),
            message,
        }),
        supervise::Outcome::Cancelled => Attempt::Cancelled,
    }
}

/// Base delay of the exponential retry backoff.
const RETRY_BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Runs one point to a final status: quarantined attempts, watchdog
/// registration, and `max_retries` re-runs of failures (timeouts are not
/// retried — a point that blew its budget once will blow it again).
fn run_point(
    point: &SweepPoint<'_>,
    timeout: Option<f64>,
    max_retries: u32,
    watch: &Mutex<Option<(ProgressToken, Instant)>>,
) -> (PointStatus, u32, Option<PointError>, PointOutput) {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let token = ProgressToken::new();
        if let Some(secs) = timeout {
            let deadline = Instant::now() + Duration::from_secs_f64(secs.max(0.0));
            *watch.lock().unwrap_or_else(|e| e.into_inner()) = Some((token.clone(), deadline));
        }
        let guard = progress::install(token);
        // Discard any telemetry stash a previous (failed) attempt on this
        // worker thread left behind, so an Ok attempt can only pick up
        // its own recording.
        crate::take_point_telemetry();
        let outcome = run_quarantined(|| (point.run)());
        drop(guard);
        if timeout.is_some() {
            *watch.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
        match outcome {
            Attempt::Ok(mut output) => {
                if let Some(tel) = crate::take_point_telemetry() {
                    output.metrics.push(("telemetry".to_string(), tel));
                }
                return (PointStatus::Ok, attempts, None, output);
            }
            Attempt::Cancelled => {
                let budget = timeout.unwrap_or(0.0);
                return (
                    PointStatus::TimedOut,
                    attempts,
                    Some(PointError {
                        kind: "timeout".to_string(),
                        message: format!("point exceeded its {budget}s wall-clock budget"),
                    }),
                    PointOutput::new(),
                );
            }
            Attempt::Failed(error) => {
                if attempts <= max_retries {
                    // Exponential backoff before the re-run.
                    let delay = RETRY_BACKOFF_BASE * 2u32.saturating_pow(attempts - 1).min(64);
                    std::thread::sleep(delay);
                    continue;
                }
                return (
                    PointStatus::Failed,
                    attempts,
                    Some(error),
                    PointOutput::new(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint journal
// ---------------------------------------------------------------------------

/// A crash-safe JSONL journal of completed sweep points.
///
/// Every append rewrites the whole file to a temporary sibling, fsyncs
/// it, and renames it over the journal — so the journal on disk is always
/// a complete, well-formed prefix of the sweep, even across SIGKILL.
/// (Sweeps are at most a few hundred points, so the O(n²) rewrite cost is
/// noise next to simulation time.)
struct Journal {
    path: PathBuf,
    lines: Vec<String>,
}

impl Journal {
    /// Opens `path`, loading any lines an earlier (possibly killed) run
    /// left behind. Unreadable files start an empty journal.
    fn open(path: &Path) -> Journal {
        let lines = std::fs::read_to_string(path)
            .map(|text| {
                text.lines()
                    .filter(|l| !l.trim().is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        Journal {
            path: path.to_path_buf(),
            lines,
        }
    }

    /// Successfully completed entries keyed by point id; when a point
    /// appears multiple times (a failed run re-attempted later), the
    /// last entry wins.
    fn completed_by_id(&self) -> std::collections::HashMap<String, JsonValue> {
        let mut map = std::collections::HashMap::new();
        for line in &self.lines {
            let Ok(entry) = JsonValue::parse(line) else {
                continue; // torn or corrupt line: ignore
            };
            let Some(id) = entry.get("id").and_then(JsonValue::as_str) else {
                continue;
            };
            let ok = entry.get("status").and_then(JsonValue::as_str) == Some("ok");
            if ok {
                map.insert(id.to_string(), entry);
            } else {
                // A later failure supersedes an earlier success for the
                // same id (shouldn't happen, but last-wins is the rule).
                map.remove(id);
            }
        }
        map
    }

    /// Appends one entry crash-safely (rewrite + fsync + rename).
    fn append(&mut self, entry: &JsonValue) -> std::io::Result<()> {
        use std::io::Write;
        self.lines.push(entry.to_string());
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            for line in &self.lines {
                writeln!(f, "{line}")?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)
    }
}

/// A completed sweep: records in declaration order plus run metadata.
#[derive(Debug)]
pub struct SweepResult {
    /// Sweep name (names the JSON artifact).
    pub name: String,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Completed points, in declaration order (never completion order).
    pub records: Vec<PointRecord>,
    /// Host wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
}

impl SweepResult {
    /// The record with the exact `(dataset, app, config)` labels.
    pub fn find(&self, dataset: &str, app: &str, config: &str) -> Option<&PointRecord> {
        self.records
            .iter()
            .find(|r| r.dataset == dataset && r.app == app && r.config == config)
    }

    /// Records for one dataset label, in declaration order.
    pub fn for_dataset<'s>(&'s self, dataset: &'s str) -> impl Iterator<Item = &'s PointRecord> {
        self.records.iter().filter(move |r| r.dataset == dataset)
    }

    /// `(dataset, app)` groups in which **every** point failed or timed
    /// out — the condition that makes the sweep exit non-zero. Partial
    /// failures (a group with at least one completed point) keep exit
    /// code 0 so one bad configuration can't mask an otherwise useful
    /// artifact.
    pub fn failed_groups(&self) -> Vec<(String, String)> {
        let mut groups: Vec<(String, String, bool)> = Vec::new();
        for r in &self.records {
            match groups
                .iter_mut()
                .find(|(d, a, _)| *d == r.dataset && *a == r.app)
            {
                Some((_, _, any_ok)) => *any_ok |= r.is_ok(),
                None => groups.push((r.dataset.clone(), r.app.clone(), r.is_ok())),
            }
        }
        groups
            .into_iter()
            .filter(|(_, _, any_ok)| !any_ok)
            .map(|(d, a, _)| (d, a))
            .collect()
    }

    /// Process exit code implied by the failure semantics: `1` when some
    /// `(dataset, app)` group has no completed point, `0` otherwise.
    pub fn exit_code(&self) -> u8 {
        u8::from(!self.failed_groups().is_empty())
    }

    /// Records that did not complete, in declaration order.
    pub fn failures(&self) -> impl Iterator<Item = &PointRecord> {
        self.records.iter().filter(|r| !r.is_ok())
    }

    /// The deterministic per-point JSON array — everything except
    /// host-side timing. Byte-identical across `--jobs` settings and
    /// across `--resume` replays.
    pub fn points_json(&self) -> JsonValue {
        JsonValue::array(
            self.records
                .iter()
                .map(|r| JsonValue::Object(r.record_fields())),
        )
    }

    /// Merged [`ReportSummary`] over every point that carries a live
    /// report (journal-replayed reports are JSON-only and not merged).
    pub fn summary(&self) -> ReportSummary {
        ReportSummary::merge(self.records.iter().filter_map(PointRecord::report))
    }

    /// The full JSON document (`schema_version` 2: point records carry
    /// `status`/`attempts`/`error`).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("schema_version", JsonValue::from(2u64)),
            ("sweep", JsonValue::from(self.name.as_str())),
            ("points", self.points_json()),
            ("summary", self.summary().to_json_value()),
            (
                "host",
                JsonValue::object([
                    ("jobs", JsonValue::from(self.jobs)),
                    ("wall_seconds", JsonValue::from(self.wall_seconds)),
                    (
                        "point_wall_seconds",
                        JsonValue::array(
                            self.records.iter().map(|r| JsonValue::from(r.wall_seconds)),
                        ),
                    ),
                    (
                        "peak_rss_kb",
                        peak_rss_kb().map_or(JsonValue::Null, JsonValue::from),
                    ),
                    ("quick_mode", JsonValue::from(crate::quick_mode())),
                ]),
            ),
        ])
    }

    /// Writes the pretty-printed document, creating parent directories.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json_value().to_string_pretty())
    }
}

/// Peak resident-set size of this process in kB (`VmHWM`), when the
/// platform exposes it.
pub fn peak_rss_kb() -> Option<u64> {
    if cfg!(target_os = "linux") {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        line.split_whitespace().nth(1)?.parse().ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn tiny_sweep<'a>(ran: &'a AtomicU64) -> Sweep<'a> {
        let mut s = Sweep::new("test");
        for (d, k) in [("g1", 3u64), ("g1", 4), ("g2", 3), ("g2", 4), ("g2", 5)] {
            s.point(d, &format!("{k}-CF"), "default", move || {
                ran.fetch_add(1, Ordering::Relaxed);
                // Busy-ish work with input-dependent duration so that
                // completion order differs from declaration order.
                let mut acc = 0u64;
                for i in 0..(k * 10_000) {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                PointOutput::new()
                    .metric("k", k)
                    .metric("acc", acc)
                    .metric("id", format!("{d}/{k}"))
            });
        }
        s
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gramer-sweep-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn results_are_in_declaration_order() {
        let ran = AtomicU64::new(0);
        let r = tiny_sweep(&ran).run(4, None);
        assert_eq!(ran.load(Ordering::Relaxed), 5);
        let ids: Vec<String> = r.records.iter().map(PointRecord::id).collect();
        assert_eq!(
            ids,
            [
                "g1/3-CF/default",
                "g1/4-CF/default",
                "g2/3-CF/default",
                "g2/4-CF/default",
                "g2/5-CF/default"
            ]
        );
        assert!(r.records.iter().all(PointRecord::is_ok));
        assert_eq!(r.exit_code(), 0);
    }

    #[test]
    fn point_data_identical_across_job_counts() {
        let ran = AtomicU64::new(0);
        let serial = tiny_sweep(&ran).run(1, None);
        let parallel = tiny_sweep(&ran).run(4, None);
        assert_eq!(serial.jobs, 1);
        assert!(parallel.jobs > 1);
        assert_eq!(
            serial.points_json().to_string_pretty(),
            parallel.points_json().to_string_pretty(),
            "point data must be byte-identical regardless of --jobs"
        );
    }

    #[test]
    fn filter_selects_by_id_substring() {
        let ran = AtomicU64::new(0);
        let r = tiny_sweep(&ran).run(2, Some("g2"));
        assert_eq!(r.records.len(), 3);
        assert_eq!(
            ran.load(Ordering::Relaxed),
            3,
            "filtered points must not run"
        );
        let r2 = tiny_sweep(&ran).run(2, Some("5-CF"));
        assert_eq!(r2.records.len(), 1);
        assert_eq!(r2.records[0].dataset, "g2");
    }

    #[test]
    fn golden_snapshot_of_tiny_sweep_points() {
        let mut s = Sweep::new("golden");
        s.point("k3", "3-CF", "default", || {
            PointOutput::new()
                .metric("cycles", 123u64)
                .metric("ratio", 0.5)
        });
        let r = s.run(1, None);
        // The exact serialized bytes are the schema contract; update this
        // snapshot deliberately, never incidentally.
        let expected = "\
[
  {
    \"dataset\": \"k3\",
    \"app\": \"3-CF\",
    \"config\": \"default\",
    \"status\": \"ok\",
    \"attempts\": 1,
    \"error\": null,
    \"metrics\": {
      \"cycles\": 123,
      \"ratio\": 0.5
    },
    \"report\": null
  }
]
";
        assert_eq!(r.points_json().to_string_pretty(), expected);
    }

    #[test]
    fn full_document_has_versioned_schema() {
        let mut s = Sweep::new("doc");
        s.point("d", "a", "c", || PointOutput::new().metric("x", 1u64));
        let r = s.run(1, None);
        let doc = r.to_json_value();
        assert_eq!(
            doc.get("schema_version").and_then(JsonValue::as_u64),
            Some(2)
        );
        assert_eq!(doc.get("sweep").and_then(JsonValue::as_str), Some("doc"));
        assert!(doc.get("summary").is_some());
        assert!(doc.get("host").and_then(|h| h.get("jobs")).is_some());
        // Parse back through the hand-rolled parser.
        let text = doc.to_string_pretty();
        assert!(JsonValue::parse(&text).is_ok());
    }

    #[test]
    fn workers_run_points_concurrently() {
        let mut s = Sweep::new("sleep");
        for i in 0..4u64 {
            s.point("d", &format!("p{i}"), "c", move || {
                std::thread::sleep(std::time::Duration::from_millis(80));
                PointOutput::new().metric("i", i)
            });
        }
        let t0 = Instant::now();
        s.run(4, None);
        let elapsed = t0.elapsed();
        // Four 80 ms points overlapped on four workers (sleeps overlap
        // even on a single core): well under the 320 ms a serial run
        // needs. The generous bound keeps this robust under load.
        assert!(
            elapsed < std::time::Duration::from_millis(240),
            "4 points on 4 workers took {elapsed:?}, expected overlap"
        );
    }

    #[test]
    fn empty_sweep_is_fine() {
        let r = Sweep::new("empty").run(4, None);
        assert!(r.records.is_empty());
        assert_eq!(r.summary().runs, 0);
        assert_eq!(r.exit_code(), 0);
    }

    #[test]
    fn find_and_metric_accessors() {
        let mut s = Sweep::new("acc");
        s.point("d1", "app", "cfg", || PointOutput::new().metric("v", 2.5));
        let r = s.run(1, None);
        let p = r.find("d1", "app", "cfg").expect("present");
        assert_eq!(p.metric_f64("v"), Some(2.5));
        assert_eq!(p.metric_f64("missing"), None);
        assert!(r.find("d1", "app", "other").is_none());
    }

    // -- fault tolerance ---------------------------------------------------

    #[test]
    fn panicking_point_becomes_failed_record() {
        let mut s = Sweep::new("quarantine");
        s.point("d", "good", "c", || PointOutput::new().metric("x", 1u64));
        s.point("d", "bad", "c", || -> PointOutput {
            panic!("injected failure {}", 42);
        });
        s.point("d", "also-good", "c", || {
            PointOutput::new().metric("x", 2u64)
        });
        let r = s.run(2, None);
        assert_eq!(r.records.len(), 3, "sweep must survive the panic");
        let bad = r.find("d", "bad", "c").expect("failed record present");
        assert_eq!(bad.status, PointStatus::Failed);
        assert_eq!(bad.attempts, 1);
        let err = bad.error.as_ref().expect("error recorded");
        assert_eq!(err.kind, "panic");
        assert!(
            err.message.contains("injected failure 42"),
            "panic message not captured: {:?}",
            err.message
        );
        // Healthy neighbours are unaffected.
        assert!(r.find("d", "good", "c").unwrap().is_ok());
        assert!(r.find("d", "also-good", "c").unwrap().is_ok());
        // The (d, good) and (d, also-good) groups are fine and (d, bad)
        // is fully failed -> non-zero exit.
        assert_eq!(r.exit_code(), 1);
        assert_eq!(
            r.failed_groups(),
            vec![("d".to_string(), "bad".to_string())]
        );
    }

    #[test]
    fn typed_error_point_records_kind() {
        let mut s = Sweep::new("typed");
        s.point(
            "d",
            "a",
            "bad-config",
            || -> Result<PointOutput, SimError> {
                Err(SimError::App("no such dataset".to_string()))
            },
        );
        s.point("d", "a", "good", || {
            Ok::<_, SimError>(PointOutput::new().metric("x", 1u64))
        });
        let r = s.run(1, None);
        let bad = r.find("d", "a", "bad-config").unwrap();
        assert_eq!(bad.status, PointStatus::Failed);
        assert_eq!(bad.error.as_ref().unwrap().kind, "app-error");
        // The (d, a) group has one completed point -> exit 0.
        assert_eq!(r.exit_code(), 0);
    }

    #[test]
    fn exit_code_nonzero_only_when_whole_group_fails() {
        let mut s = Sweep::new("groups");
        s.point("d1", "a", "c1", || -> PointOutput { panic!("down") });
        s.point("d1", "a", "c2", || PointOutput::new());
        let r = s.run(1, None);
        assert_eq!(
            r.exit_code(),
            0,
            "partially failed group must not fail the run"
        );

        let mut s = Sweep::new("groups");
        s.point("d1", "a", "c1", || -> PointOutput { panic!("down") });
        s.point("d1", "a", "c2", || -> PointOutput { panic!("down") });
        s.point("d2", "a", "c1", || PointOutput::new());
        let r = s.run(1, None);
        assert_eq!(r.exit_code(), 1, "fully failed group must fail the run");
        assert_eq!(r.failures().count(), 2);
    }

    #[test]
    fn retries_rerun_failed_points() {
        let calls = AtomicU64::new(0);
        let mut s = Sweep::new("retry");
        s.point("d", "flaky", "c", || {
            // Fail the first two attempts, succeed on the third.
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("transient fault");
            }
            PointOutput::new().metric("x", 7u64)
        });
        let r = s.run_with(&SweepOptions {
            jobs: 1,
            max_retries: 3,
            ..SweepOptions::default()
        });
        let p = &r.records[0];
        assert!(p.is_ok());
        assert_eq!(p.attempts, 3);
        assert_eq!(calls.load(Ordering::Relaxed), 3);

        // With retries exhausted the point stays failed and counts them.
        let calls = AtomicU64::new(0);
        let mut s = Sweep::new("retry");
        s.point("d", "doomed", "c", || -> PointOutput {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("permanent fault");
        });
        let r = s.run_with(&SweepOptions {
            jobs: 1,
            max_retries: 2,
            ..SweepOptions::default()
        });
        assert_eq!(r.records[0].status, PointStatus::Failed);
        assert_eq!(r.records[0].attempts, 3);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn watchdog_times_out_stalling_point() {
        let mut s = Sweep::new("watchdog");
        s.point("d", "stall", "c", || -> PointOutput {
            // A cooperative stall: ticks (so it is cancellable) but never
            // finishes on its own.
            loop {
                progress::tick();
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        s.point("d", "quick", "c", || PointOutput::new().metric("x", 1u64));
        let t0 = Instant::now();
        let r = s.run_with(&SweepOptions {
            jobs: 2,
            point_timeout: Some(0.2),
            ..SweepOptions::default()
        });
        // Generous bound (1-CPU CI): the stall must end well before the
        // 60s test timeout, and the sweep must complete.
        assert!(t0.elapsed() < Duration::from_secs(30));
        let stalled = r.find("d", "stall", "c").unwrap();
        assert_eq!(stalled.status, PointStatus::TimedOut);
        assert_eq!(stalled.error.as_ref().unwrap().kind, "timeout");
        assert!(r.find("d", "quick", "c").unwrap().is_ok());
    }

    #[test]
    fn journal_and_resume_replay_completed_points() {
        let journal = temp_path("resume.jsonl");
        let _ = std::fs::remove_file(&journal);
        // Interrupted first run: only p1 declared (simulates a sweep
        // killed after its first point was journaled).
        let mut s = Sweep::new("resume");
        s.point("d", "p1", "c", || PointOutput::new().metric("v", 11u64));
        let first = s.run_with(&SweepOptions {
            jobs: 1,
            journal: Some(journal.clone()),
            ..SweepOptions::default()
        });
        assert!(first.records[0].is_ok());
        assert!(journal.exists(), "journal file must be written");

        // Full fresh run (no resume) for the byte-identity baseline.
        let mut s = Sweep::new("resume");
        let p2_ran = AtomicU64::new(0);
        s.point("d", "p1", "c", || PointOutput::new().metric("v", 11u64));
        s.point("d", "p2", "c", || {
            p2_ran.fetch_add(1, Ordering::Relaxed);
            PointOutput::new().metric("v", 22u64)
        });
        let fresh = s.run(1, None);

        // Resumed run: p1 must replay from the journal (not re-execute),
        // p2 runs live; the points JSON must be byte-identical.
        let mut s = Sweep::new("resume");
        let p1_reran = AtomicU64::new(0);
        s.point("d", "p1", "c", || {
            p1_reran.fetch_add(1, Ordering::Relaxed);
            PointOutput::new().metric("v", 11u64)
        });
        s.point("d", "p2", "c", || PointOutput::new().metric("v", 22u64));
        let resumed = s.run_with(&SweepOptions {
            jobs: 1,
            resume: true,
            journal: Some(journal.clone()),
            ..SweepOptions::default()
        });
        assert_eq!(p1_reran.load(Ordering::Relaxed), 0, "p1 must be replayed");
        assert_eq!(
            resumed.points_json().to_string_pretty(),
            fresh.points_json().to_string_pretty(),
            "resumed points JSON must be byte-identical to a fresh run"
        );
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn failed_points_are_rerun_on_resume() {
        let journal = temp_path("rerun.jsonl");
        let _ = std::fs::remove_file(&journal);
        // First run: the point fails (and is journaled as failed).
        let mut s = Sweep::new("rerun");
        s.point("d", "p", "c", || -> PointOutput { panic!("first run") });
        let r = s.run_with(&SweepOptions {
            jobs: 1,
            journal: Some(journal.clone()),
            ..SweepOptions::default()
        });
        assert_eq!(r.records[0].status, PointStatus::Failed);

        // Resume: failed entries must NOT be replayed as complete.
        let reran = AtomicU64::new(0);
        let mut s = Sweep::new("rerun");
        s.point("d", "p", "c", || {
            reran.fetch_add(1, Ordering::Relaxed);
            PointOutput::new().metric("fixed", true)
        });
        let r = s.run_with(&SweepOptions {
            jobs: 1,
            resume: true,
            journal: Some(journal.clone()),
            ..SweepOptions::default()
        });
        assert_eq!(reran.load(Ordering::Relaxed), 1, "failed point must re-run");
        assert!(r.records[0].is_ok());
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn journal_survives_torn_trailing_line() {
        let journal = temp_path("torn.jsonl");
        std::fs::write(
            &journal,
            "{\"id\": \"d/p1/c\", \"status\": \"ok\", \"attempts\": 1, \"metrics\": {\"v\": 1}, \"report\": null}\n{\"id\": \"d/p2/c\", \"status\": \"o",
        )
        .unwrap();
        let reran = AtomicU64::new(0);
        let mut s = Sweep::new("torn");
        s.point("d", "p1", "c", || {
            reran.fetch_add(1, Ordering::Relaxed);
            PointOutput::new().metric("v", 1u64)
        });
        s.point("d", "p2", "c", || {
            reran.fetch_add(1, Ordering::Relaxed);
            PointOutput::new().metric("v", 2u64)
        });
        let r = s.run_with(&SweepOptions {
            jobs: 1,
            resume: true,
            journal: Some(journal.clone()),
            ..SweepOptions::default()
        });
        // p1 replays; the torn p2 line is ignored and p2 re-runs.
        assert_eq!(reran.load(Ordering::Relaxed), 1);
        assert!(r.records.iter().all(PointRecord::is_ok));
        assert_eq!(r.records[0].metric_f64("v"), Some(1.0));
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn replayed_report_preserves_cycles_lookup() {
        let journal = temp_path("cycles.jsonl");
        std::fs::write(
            &journal,
            "{\"id\": \"d/p/c\", \"status\": \"ok\", \"attempts\": 1, \"metrics\": {}, \"report\": {\"cycles\": 777}}\n",
        )
        .unwrap();
        let mut s = Sweep::new("cycles");
        s.point("d", "p", "c", || -> PointOutput {
            panic!("must not run — journaled")
        });
        let r = s.run_with(&SweepOptions {
            jobs: 1,
            resume: true,
            journal: Some(journal.clone()),
            ..SweepOptions::default()
        });
        let p = &r.records[0];
        assert!(p.is_ok());
        assert!(p.report().is_none(), "replayed reports are JSON-only");
        assert_eq!(p.cycles(), Some(777));
        let _ = std::fs::remove_file(&journal);
    }
}
