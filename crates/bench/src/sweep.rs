//! The experiment-sweep runner: executes independent simulation points in
//! parallel and serializes the whole sweep to a stable JSON artifact.
//!
//! Every `fig*`/`table*` binary declares its grid of
//! `(dataset, app, config)` points as a [`Sweep`], then calls
//! [`Sweep::execute`]. The runner:
//!
//! 1. applies the `--filter` substring to the `dataset/app/config` ids;
//! 2. executes the remaining points on a work-queue thread pool
//!    (`--jobs N`, std threads + channels, no external dependencies) —
//!    host-side parallelism only, so simulated results are unaffected;
//! 3. re-assembles results in **declaration order** regardless of
//!    completion order, making the JSON point data byte-identical across
//!    `--jobs` settings;
//! 4. logs per-point progress to stderr (stdout stays clean for tables);
//! 5. writes `results/BENCH_<name>.json` (override with `--json PATH`):
//!    deterministic point data + a merged summary, with volatile
//!    host-side timing and peak-RSS metadata quarantined under `"host"`.
//!
//! The schema is hand-rolled on [`gramer::json::JsonValue`] and versioned
//! via `schema_version`; see `EXPERIMENTS.md` for the layout.

use crate::SweepArgs;
use gramer::json::JsonValue;
use gramer::{ReportSummary, RunReport};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// What one sweep point produces: an optional full simulator report plus
/// named scalar/structured metrics for the bin's table and the JSON file.
#[derive(Debug, Default)]
pub struct PointOutput {
    /// Full simulator report, when the point ran the GRAMER simulator.
    pub report: Option<RunReport>,
    /// Named metrics in insertion order (serialized as a JSON object).
    pub metrics: Vec<(String, JsonValue)>,
}

impl PointOutput {
    /// An empty output, to be filled with [`PointOutput::metric`] calls.
    pub fn new() -> Self {
        PointOutput::default()
    }

    /// Wraps a simulator report (its JSON lands under the point's
    /// `"report"` key).
    pub fn from_report(report: RunReport) -> Self {
        PointOutput {
            report: Some(report),
            metrics: Vec::new(),
        }
    }

    /// Appends a named metric (builder style).
    pub fn metric(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.metrics.push((key.to_string(), value.into()));
        self
    }
}

/// One declared `(dataset, app, config)` grid point and its work closure.
pub struct SweepPoint<'a> {
    dataset: String,
    app: String,
    config: String,
    run: Box<dyn Fn() -> PointOutput + Send + Sync + 'a>,
}

impl SweepPoint<'_> {
    /// The point's id: `dataset/app/config` (the `--filter` target).
    pub fn id(&self) -> String {
        format!("{}/{}/{}", self.dataset, self.app, self.config)
    }
}

/// A completed point, back in declaration order.
#[derive(Debug)]
pub struct PointRecord {
    /// Dataset label of the point.
    pub dataset: String,
    /// Application label of the point.
    pub app: String,
    /// Configuration label of the point.
    pub config: String,
    /// What the point produced.
    pub output: PointOutput,
    /// Host wall-clock seconds this point took (volatile; excluded from
    /// the deterministic JSON point data).
    pub wall_seconds: f64,
}

impl PointRecord {
    /// The point's `dataset/app/config` id.
    pub fn id(&self) -> String {
        format!("{}/{}/{}", self.dataset, self.app, self.config)
    }

    /// Looks up a named metric.
    pub fn metric(&self, key: &str) -> Option<&JsonValue> {
        self.output
            .metrics
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A named metric as `f64`.
    pub fn metric_f64(&self, key: &str) -> Option<f64> {
        self.metric(key).and_then(JsonValue::as_f64)
    }

    /// Simulated cycles, when the point carries a report.
    pub fn cycles(&self) -> Option<u64> {
        self.output.report.as_ref().map(|r| r.cycles)
    }

    /// The point's simulator report, when present.
    pub fn report(&self) -> Option<&RunReport> {
        self.output.report.as_ref()
    }
}

/// A declarative set of independent simulation points.
pub struct Sweep<'a> {
    name: String,
    points: Vec<SweepPoint<'a>>,
}

impl<'a> Sweep<'a> {
    /// An empty sweep named `name` (also names the JSON artifact:
    /// `results/BENCH_<name>.json`).
    pub fn new(name: &str) -> Self {
        Sweep {
            name: name.to_string(),
            points: Vec::new(),
        }
    }

    /// Declares one point. `run` must be independent of every other
    /// point: it may run on any worker thread, in any order.
    pub fn point(
        &mut self,
        dataset: &str,
        app: &str,
        config: &str,
        run: impl Fn() -> PointOutput + Send + Sync + 'a,
    ) {
        self.points.push(SweepPoint {
            dataset: dataset.to_string(),
            app: app.to_string(),
            config: config.to_string(),
            run: Box::new(run),
        });
    }

    /// Number of declared points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are declared.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Runs the sweep under `args`: honours `--list` (print ids and exit)
    /// and `--filter`, executes with `--jobs` workers, and writes the
    /// JSON artifact. This is the entry point the bins use.
    pub fn execute(self, args: &SweepArgs) -> SweepResult {
        if args.list {
            for p in self.filtered(args.filter.as_deref()) {
                println!("{}", p.id());
            }
            std::process::exit(0);
        }
        let json_path = args
            .json
            .clone()
            .unwrap_or_else(|| Path::new("results").join(format!("BENCH_{}.json", self.name)));
        let result = self.run(args.jobs, args.filter.as_deref());
        match result.write_json(&json_path) {
            Ok(()) => eprintln!("[{}] wrote {}", result.name, json_path.display()),
            Err(e) => eprintln!("[{}] could not write {}: {e}", result.name, json_path.display()),
        }
        result
    }

    /// Pure execution (no JSON file, no process exit): runs the filtered
    /// points on `jobs` workers and returns records in declaration order.
    pub fn run(self, jobs: usize, filter: Option<&str>) -> SweepResult {
        let name = self.name;
        let points: Vec<SweepPoint<'a>> = {
            let matches = |p: &SweepPoint<'_>| filter.is_none_or(|f| p.id().contains(f));
            self.points.into_iter().filter(|p| matches(p)).collect()
        };
        let n = points.len();
        let jobs = jobs.max(1).min(n.max(1));
        let started = Instant::now();

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, PointOutput, f64)>();
        let mut outputs: Vec<Option<(PointOutput, f64)>> = Vec::new();
        outputs.resize_with(n, || None);

        std::thread::scope(|scope| {
            let points = &points;
            let next = &next;
            for _ in 0..jobs {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    let output = (points[i].run)();
                    // The receiver only disconnects if the collector
                    // panicked; nothing useful to do with the result then.
                    let _ = tx.send((i, output, t0.elapsed().as_secs_f64()));
                });
            }
            drop(tx);

            // Collect on this thread so progress lines never interleave.
            let mut done = 0usize;
            while let Ok((i, output, secs)) = rx.recv() {
                done += 1;
                eprintln!(
                    "[{name}] {done}/{n} {} ({secs:.2}s, jobs={jobs})",
                    points[i].id()
                );
                outputs[i] = Some((output, secs));
            }
        });

        let records = points
            .into_iter()
            .zip(outputs)
            .map(|(p, slot)| {
                let (output, wall_seconds) =
                    slot.expect("every queued point sends exactly one result");
                PointRecord {
                    dataset: p.dataset,
                    app: p.app,
                    config: p.config,
                    output,
                    wall_seconds,
                }
            })
            .collect();

        SweepResult {
            name,
            jobs,
            records,
            wall_seconds: started.elapsed().as_secs_f64(),
        }
    }

    fn filtered<'s>(&'s self, filter: Option<&'s str>) -> impl Iterator<Item = &'s SweepPoint<'a>> {
        self.points
            .iter()
            .filter(move |p| filter.is_none_or(|f| p.id().contains(f)))
    }
}

/// A completed sweep: records in declaration order plus run metadata.
#[derive(Debug)]
pub struct SweepResult {
    /// Sweep name (names the JSON artifact).
    pub name: String,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Completed points, in declaration order (never completion order).
    pub records: Vec<PointRecord>,
    /// Host wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
}

impl SweepResult {
    /// The record with the exact `(dataset, app, config)` labels.
    pub fn find(&self, dataset: &str, app: &str, config: &str) -> Option<&PointRecord> {
        self.records
            .iter()
            .find(|r| r.dataset == dataset && r.app == app && r.config == config)
    }

    /// Records for one dataset label, in declaration order.
    pub fn for_dataset<'s>(&'s self, dataset: &'s str) -> impl Iterator<Item = &'s PointRecord> {
        self.records.iter().filter(move |r| r.dataset == dataset)
    }

    /// The deterministic per-point JSON array — everything except
    /// host-side timing. Byte-identical across `--jobs` settings.
    pub fn points_json(&self) -> JsonValue {
        JsonValue::array(self.records.iter().map(|r| {
            JsonValue::object([
                ("dataset", JsonValue::from(r.dataset.as_str())),
                ("app", JsonValue::from(r.app.as_str())),
                ("config", JsonValue::from(r.config.as_str())),
                (
                    "metrics",
                    JsonValue::Object(
                        r.output
                            .metrics
                            .iter()
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect(),
                    ),
                ),
                (
                    "report",
                    r.output
                        .report
                        .as_ref()
                        .map_or(JsonValue::Null, RunReport::to_json_value),
                ),
            ])
        }))
    }

    /// Merged [`ReportSummary`] over every point that carries a report.
    pub fn summary(&self) -> ReportSummary {
        ReportSummary::merge(self.records.iter().filter_map(PointRecord::report))
    }

    /// The full JSON document (`schema_version` 1).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("schema_version", JsonValue::from(1u64)),
            ("sweep", JsonValue::from(self.name.as_str())),
            ("points", self.points_json()),
            ("summary", self.summary().to_json_value()),
            (
                "host",
                JsonValue::object([
                    ("jobs", JsonValue::from(self.jobs)),
                    ("wall_seconds", JsonValue::from(self.wall_seconds)),
                    (
                        "point_wall_seconds",
                        JsonValue::array(
                            self.records.iter().map(|r| JsonValue::from(r.wall_seconds)),
                        ),
                    ),
                    (
                        "peak_rss_kb",
                        peak_rss_kb().map_or(JsonValue::Null, JsonValue::from),
                    ),
                    ("quick_mode", JsonValue::from(crate::quick_mode())),
                ]),
            ),
        ])
    }

    /// Writes the pretty-printed document, creating parent directories.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json_value().to_string_pretty())
    }
}

/// Peak resident-set size of this process in kB (`VmHWM`), when the
/// platform exposes it.
pub fn peak_rss_kb() -> Option<u64> {
    if cfg!(target_os = "linux") {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        line.split_whitespace().nth(1)?.parse().ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn tiny_sweep<'a>(ran: &'a AtomicU64) -> Sweep<'a> {
        let mut s = Sweep::new("test");
        for (d, k) in [("g1", 3u64), ("g1", 4), ("g2", 3), ("g2", 4), ("g2", 5)] {
            s.point(d, &format!("{k}-CF"), "default", move || {
                ran.fetch_add(1, Ordering::Relaxed);
                // Busy-ish work with input-dependent duration so that
                // completion order differs from declaration order.
                let mut acc = 0u64;
                for i in 0..(k * 10_000) {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                PointOutput::new()
                    .metric("k", k)
                    .metric("acc", acc)
                    .metric("id", format!("{d}/{k}"))
            });
        }
        s
    }

    #[test]
    fn results_are_in_declaration_order() {
        let ran = AtomicU64::new(0);
        let r = tiny_sweep(&ran).run(4, None);
        assert_eq!(ran.load(Ordering::Relaxed), 5);
        let ids: Vec<String> = r.records.iter().map(PointRecord::id).collect();
        assert_eq!(
            ids,
            [
                "g1/3-CF/default",
                "g1/4-CF/default",
                "g2/3-CF/default",
                "g2/4-CF/default",
                "g2/5-CF/default"
            ]
        );
    }

    #[test]
    fn point_data_identical_across_job_counts() {
        let ran = AtomicU64::new(0);
        let serial = tiny_sweep(&ran).run(1, None);
        let parallel = tiny_sweep(&ran).run(4, None);
        assert_eq!(serial.jobs, 1);
        assert!(parallel.jobs > 1);
        assert_eq!(
            serial.points_json().to_string_pretty(),
            parallel.points_json().to_string_pretty(),
            "point data must be byte-identical regardless of --jobs"
        );
    }

    #[test]
    fn filter_selects_by_id_substring() {
        let ran = AtomicU64::new(0);
        let r = tiny_sweep(&ran).run(2, Some("g2"));
        assert_eq!(r.records.len(), 3);
        assert_eq!(ran.load(Ordering::Relaxed), 3, "filtered points must not run");
        let r2 = tiny_sweep(&ran).run(2, Some("5-CF"));
        assert_eq!(r2.records.len(), 1);
        assert_eq!(r2.records[0].dataset, "g2");
    }

    #[test]
    fn golden_snapshot_of_tiny_sweep_points() {
        let mut s = Sweep::new("golden");
        s.point("k3", "3-CF", "default", || {
            PointOutput::new().metric("cycles", 123u64).metric("ratio", 0.5)
        });
        let r = s.run(1, None);
        // The exact serialized bytes are the schema contract; update this
        // snapshot deliberately, never incidentally.
        let expected = "\
[
  {
    \"dataset\": \"k3\",
    \"app\": \"3-CF\",
    \"config\": \"default\",
    \"metrics\": {
      \"cycles\": 123,
      \"ratio\": 0.5
    },
    \"report\": null
  }
]
";
        assert_eq!(r.points_json().to_string_pretty(), expected);
    }

    #[test]
    fn full_document_has_versioned_schema() {
        let mut s = Sweep::new("doc");
        s.point("d", "a", "c", || PointOutput::new().metric("x", 1u64));
        let r = s.run(1, None);
        let doc = r.to_json_value();
        assert_eq!(doc.get("schema_version").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(doc.get("sweep").and_then(JsonValue::as_str), Some("doc"));
        assert!(doc.get("summary").is_some());
        assert!(doc.get("host").and_then(|h| h.get("jobs")).is_some());
        // Parse back through the hand-rolled parser.
        let text = doc.to_string_pretty();
        assert!(JsonValue::parse(&text).is_ok());
    }

    #[test]
    fn workers_run_points_concurrently() {
        let mut s = Sweep::new("sleep");
        for i in 0..4u64 {
            s.point("d", &format!("p{i}"), "c", move || {
                std::thread::sleep(std::time::Duration::from_millis(80));
                PointOutput::new().metric("i", i)
            });
        }
        let t0 = Instant::now();
        s.run(4, None);
        let elapsed = t0.elapsed();
        // Four 80 ms points overlapped on four workers (sleeps overlap
        // even on a single core): well under the 320 ms a serial run
        // needs. The generous bound keeps this robust under load.
        assert!(
            elapsed < std::time::Duration::from_millis(240),
            "4 points on 4 workers took {elapsed:?}, expected overlap"
        );
    }

    #[test]
    fn empty_sweep_is_fine() {
        let r = Sweep::new("empty").run(4, None);
        assert!(r.records.is_empty());
        assert_eq!(r.summary().runs, 0);
    }

    #[test]
    fn find_and_metric_accessors() {
        let mut s = Sweep::new("acc");
        s.point("d1", "app", "cfg", || PointOutput::new().metric("v", 2.5));
        let r = s.run(1, None);
        let p = r.find("d1", "app", "cfg").expect("present");
        assert_eq!(p.metric_f64("v"), Some(2.5));
        assert_eq!(p.metric_f64("missing"), None);
        assert!(r.find("d1", "app", "other").is_none());
    }
}
