//! Shared harness for regenerating every table and figure of the GRAMER
//! paper's evaluation (§VI).
//!
//! Each binary in `src/bin/` reproduces one artifact by declaring its
//! grid of `(dataset, app, config)` points as a [`Sweep`] and handing it
//! to the parallel, fault-tolerant sweep runner (see [`sweep`]). Every
//! binary therefore understands the same CLI — `--jobs N`, `--json PATH`,
//! `--filter SUBSTR`, `--list`, `--resume`, `--point-timeout SECS`,
//! `--max-retries N`, `--journal PATH` — and writes a structured JSON
//! artifact to `results/BENCH_<name>.json` alongside its stdout table.
//! Failing points are quarantined into structured records instead of
//! aborting the sweep; see `EXPERIMENTS.md` for the failure semantics.
//!
//! | binary | artifact |
//! |---|---|
//! | `fig3` | pipeline-stall breakdown on the CPU baseline |
//! | `fig5` | extension locality per iteration (top-5% access shares) |
//! | `fig8` | ON_k accuracy vs computation overhead |
//! | `table2` | resource utilisation and clock rate |
//! | `table3` | running time: GRAMER vs Fractal vs RStream |
//! | `fig11` | energy and total time (incl. preprocessing) |
//! | `fig12` | LAMH vs Uniform-LRU vs Static+LRU |
//! | `table4` | clock rate w/o AB, w/ AB, w/ AB + compaction |
//! | `fig13` | pipeline-slot sweep and work-stealing speedup |
//! | `fig14` | τ and λ sensitivity |
//! | `ablation` | design-choice ablations called out in DESIGN.md |
//!
//! The paper's datasets are generated as scaled power-law analogs (see
//! `gramer_graph::datasets`); divisors below keep each simulated cell in
//! the seconds range on a laptop while preserving the small/medium/large
//! ordering. Set `GRAMER_QUICK=1` for a ~4× faster, coarser pass.
//!
//! # Example
//!
//! A minimal two-point sweep (bins declare real simulation points the
//! same way and call [`Sweep::execute`] instead of [`Sweep::run`]):
//!
//! ```
//! use gramer_bench::{PointOutput, Sweep};
//!
//! let mut sweep = Sweep::new("demo");
//! for k in [3usize, 4] {
//!     sweep.point("toy", &format!("{k}-CF"), "default", move || {
//!         PointOutput::new().metric("k", k)
//!     });
//! }
//! // Two worker threads; results still come back in declaration order.
//! let result = sweep.run(2, None);
//! assert_eq!(result.records.len(), 2);
//! assert_eq!(result.records[0].metric_f64("k"), Some(3.0));
//! // Both points completed, so the failure-aware exit code is 0.
//! assert!(result.records.iter().all(|r| r.is_ok()));
//! assert_eq!(result.exit_code(), 0);
//! ```

#![warn(missing_docs)]

use gramer::json::JsonValue;
use gramer::telemetry::{Telemetry, TelemetryConfig};
use gramer::{
    preprocess, EpochMode, GramerConfig, MemoMode, PreprocessCache, Preprocessed, RunReport,
    SimError, Simulator,
};
use gramer_graph::datasets::Dataset;
use gramer_graph::CsrGraph;
use gramer_mining::apps::{CliqueFinding, FrequentSubgraphMining, MotifCounting};
use gramer_mining::EcmApp;
use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

pub mod perf;
pub mod sweep;

pub use sweep::{
    PointError, PointOutput, PointRecord, PointStatus, Sweep, SweepOptions, SweepResult,
};

/// Whether the quick (coarser) mode is enabled via `GRAMER_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("GRAMER_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Scale divisor applied to each dataset so a software simulator can
/// finish the combinatorial workloads (documented in DESIGN.md §1).
pub fn divisor(d: Dataset) -> usize {
    let base = match d {
        Dataset::Citeseer => 1,
        Dataset::P2p => 2,
        Dataset::Astro => 16,
        Dataset::Mico => 100,
        Dataset::Patents => 1500,
        Dataset::Youtube => 6000,
        Dataset::LiveJournal => 6400,
    };
    if quick_mode() {
        base * 4
    } else {
        base
    }
}

/// Generates the scaled analog of `d`.
pub fn analog(d: Dataset) -> CsrGraph {
    d.generate_scaled(divisor(d))
}

/// Lazily generated, shared dataset analogs.
///
/// Sweep points run on worker threads; routing graph generation through
/// this cache means each dataset analog is built exactly once (on the
/// first thread that needs it) and then shared by reference, instead of
/// every point regenerating its graph.
#[derive(Debug)]
pub struct AnalogCache {
    slots: [(Dataset, OnceLock<CsrGraph>); Dataset::ALL.len()],
}

impl AnalogCache {
    /// An empty cache covering every dataset.
    pub fn new() -> Self {
        AnalogCache {
            slots: Dataset::ALL.map(|d| (d, OnceLock::new())),
        }
    }

    /// The scaled analog of `d`, generated on first use.
    pub fn get(&self, d: Dataset) -> &CsrGraph {
        let (_, slot) = self
            .slots
            .iter()
            .find(|(slot_d, _)| *slot_d == d)
            .expect("every dataset has a slot");
        slot.get_or_init(|| analog(d))
    }
}

impl Default for AnalogCache {
    fn default() -> Self {
        AnalogCache::new()
    }
}

/// FSM occurrence threshold for `d`, scaled like the graph (the paper
/// uses 2K for small/medium graphs, 20K for Patents, 250K for YT/LJ).
pub fn fsm_threshold(d: Dataset) -> u64 {
    let full: u64 = match d {
        Dataset::Patents => 20_000,
        Dataset::Youtube | Dataset::LiveJournal => 250_000,
        _ => 2_000,
    };
    (full / divisor(d) as u64).max(2)
}

/// The application variants of Table III, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppVariant {
    /// k-clique finding.
    Cf(usize),
    /// k-motif counting.
    Mc(usize),
    /// FSM with the dataset-scaled threshold.
    Fsm,
}

impl AppVariant {
    /// All Table III variants.
    pub const TABLE3: [AppVariant; 6] = [
        AppVariant::Cf(3),
        AppVariant::Cf(4),
        AppVariant::Cf(5),
        AppVariant::Mc(3),
        AppVariant::Mc(4),
        AppVariant::Fsm,
    ];

    /// Display name, with the FSM threshold resolved per dataset.
    pub fn name(self, d: Dataset) -> String {
        match self {
            AppVariant::Cf(k) => format!("{k}-CF"),
            AppVariant::Mc(k) => format!("{k}-MC"),
            AppVariant::Fsm => format!("FSM-{}", fsm_threshold(d)),
        }
    }

    /// Whether this variant tracks patterns (MC/FSM columns of Tables II
    /// and IV).
    pub fn tracks_patterns(self) -> bool {
        !matches!(self, AppVariant::Cf(_))
    }

    /// Runs `f` with the concrete application instantiated for `d`.
    pub fn with_app<R>(self, d: Dataset, f: impl FnOnce(&dyn DynApp) -> R) -> R {
        match self {
            AppVariant::Cf(k) => f(&CliqueFinding::new(k).expect("valid k")),
            AppVariant::Mc(k) => f(&MotifCounting::new(k).expect("valid k")),
            AppVariant::Fsm => f(&FrequentSubgraphMining::new(fsm_threshold(d))),
        }
    }
}

/// Object-safe adapter over [`EcmApp`] so harness code can be generic over
/// variants at runtime.
pub trait DynApp: Sync {
    /// See [`EcmApp::name`].
    fn name(&self) -> String;
    /// See [`EcmApp::max_vertices`].
    fn max_vertices(&self) -> usize;
    /// Runs the GRAMER simulator on a preprocessed graph.
    fn simulate(&self, pre: &Preprocessed, config: GramerConfig) -> Result<RunReport, SimError>;
    /// Like [`DynApp::simulate`], recording cycle-windowed telemetry into
    /// `tel`. Simulated results are identical either way.
    fn simulate_telemetry(
        &self,
        pre: &Preprocessed,
        config: GramerConfig,
        tel: &mut Telemetry,
    ) -> Result<RunReport, SimError>;
    /// Profiles the workload on the modeled CPU.
    fn profile(&self, graph: &CsrGraph) -> gramer_baselines::CpuProfile;
}

impl<A: EcmApp + Sync> DynApp for A {
    fn name(&self) -> String {
        EcmApp::name(self)
    }

    fn max_vertices(&self) -> usize {
        EcmApp::max_vertices(self)
    }

    fn simulate(&self, pre: &Preprocessed, config: GramerConfig) -> Result<RunReport, SimError> {
        Ok(Simulator::new(pre, config)?.run(self)?)
    }

    fn simulate_telemetry(
        &self,
        pre: &Preprocessed,
        config: GramerConfig,
        tel: &mut Telemetry,
    ) -> Result<RunReport, SimError> {
        Ok(Simulator::new(pre, config)?.run_telemetry(self, tel)?)
    }

    fn profile(&self, graph: &CsrGraph) -> gramer_baselines::CpuProfile {
        gramer_baselines::profile_on_cpu(graph, self)
    }
}

/// Process-wide switch for telemetry recording inside [`run_gramer`]
/// (set from the sweep runner's `--metrics` flag).
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Telemetry rollup of the last [`run_gramer`] call on this thread,
    /// waiting to be claimed by [`take_point_telemetry`]. Thread-local is
    /// the right scope: the sweep runner executes each point closure
    /// entirely on one worker thread and drains the stash right after it
    /// returns.
    static POINT_TELEMETRY: RefCell<Option<JsonValue>> = const { RefCell::new(None) };
}

/// Enables or disables telemetry recording for subsequent
/// [`run_gramer`] calls in this process.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether [`run_gramer`] currently records telemetry.
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Process-wide preprocessing cache used by [`run_gramer`] (set from the
/// sweep runner's `--artifact-cache` flag). `None` means preprocess
/// inline, the prior behavior.
static ARTIFACT_CACHE: Mutex<Option<PreprocessCache>> = Mutex::new(None);

/// Points subsequent [`run_gramer`] calls at an on-disk `.gra`
/// preprocessing cache (see [`PreprocessCache`]), or disables caching
/// with `None`. Sweeps revisiting the same `(dataset, τ, budget)` tuple
/// across points — the common case, since most grids vary simulator
/// knobs — then preprocess each graph once per process *fleet*, not
/// once per point, and reuse entries across runs.
///
/// # Errors
///
/// [`SimError`] if the cache directory cannot be created.
pub fn set_artifact_cache(dir: Option<&std::path::Path>) -> Result<(), SimError> {
    let cache = match dir {
        Some(d) => Some(PreprocessCache::new(d)?),
        None => None,
    };
    match ARTIFACT_CACHE.lock() {
        Ok(mut slot) => *slot = cache,
        Err(poisoned) => *poisoned.into_inner() = cache,
    }
    Ok(())
}

/// The currently configured preprocessing cache, if any.
fn artifact_cache() -> Option<PreprocessCache> {
    match ARTIFACT_CACHE.lock() {
        Ok(slot) => slot.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    }
}

/// Claims the telemetry rollup stashed by the most recent
/// [`run_gramer`] call on the calling thread, if any.
pub fn take_point_telemetry() -> Option<JsonValue> {
    POINT_TELEMETRY.with(|t| t.borrow_mut().take())
}

/// Process-wide epoch-engine override for [`run_gramer`] (set from the
/// sweep runner's `--epoch` flag): `0` = keep each point's configured
/// mode, `1` = force [`EpochMode::On`], `2` = force [`EpochMode::Off`].
/// Host-side only — both modes are bit-identical — so forcing it never
/// changes a sweep's simulated results, only how fast they arrive.
static EPOCH_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Process-wide `sim_threads` override for [`run_gramer`] (set from the
/// sweep runner's `--sim-threads` flag); `0` = keep each point's
/// configured value.
static SIM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide memo-table override for [`run_gramer`] (set from the
/// sweep runner's `--memo` flag): `0` = keep each point's configured
/// mode, `1` = force [`MemoMode::Off`], any other value = force
/// [`MemoMode::On`] with that byte budget. Unlike `--epoch` /
/// `--sim-threads` this is a *model* change — cycles, memory traffic
/// and energy legitimately move — but mining results stay bit-identical
/// (the memo only skips probes whose outcome is already known).
static MEMO_OVERRIDE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Installs (or clears, with `None`s) the engine overrides subsequent
/// [`run_gramer`] calls apply on top of each point's config. Driven by
/// the sweep runner's `--epoch` / `--sim-threads` / `--memo` flags; by
/// default no override is active and every point runs exactly as
/// declared.
pub fn set_engine_overrides(
    epoch: Option<EpochMode>,
    sim_threads: Option<usize>,
    memo: Option<MemoMode>,
) {
    let tag = match epoch {
        None => 0,
        Some(EpochMode::On) => 1,
        Some(EpochMode::Off) => 2,
    };
    EPOCH_OVERRIDE.store(tag, Ordering::Relaxed);
    SIM_THREADS_OVERRIDE.store(sim_threads.unwrap_or(0), Ordering::Relaxed);
    // Byte budgets are always >= MEMO_ENTRY_BYTES (> 1), so 0 and 1 are
    // free as "no override" / "force off" sentinels.
    let memo_tag = match memo {
        None => 0,
        Some(MemoMode::Off) => 1,
        Some(MemoMode::On { bytes }) => bytes,
    };
    MEMO_OVERRIDE.store(memo_tag, Ordering::Relaxed);
}

/// Applies the active engine overrides to one point's config.
fn apply_engine_overrides(config: &mut GramerConfig) {
    match EPOCH_OVERRIDE.load(Ordering::Relaxed) {
        1 => config.epoch = EpochMode::On,
        2 => config.epoch = EpochMode::Off,
        _ => {}
    }
    let threads = SIM_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if threads != 0 {
        config.sim_threads = threads;
    }
    match MEMO_OVERRIDE.load(Ordering::Relaxed) {
        0 => {}
        1 => config.memo = MemoMode::Off,
        bytes => config.memo = MemoMode::On { bytes },
    }
}

/// Runs GRAMER end-to-end (preprocess + simulate) with `config`,
/// surfacing configuration and simulation failures as typed errors the
/// sweep runner turns into structured failure records.
///
/// When metrics are enabled ([`set_metrics_enabled`], driven by the
/// sweep runner's `--metrics` flag), the run additionally records
/// cycle-windowed telemetry and stashes its compact rollup for
/// [`take_point_telemetry`]; simulated results are unaffected.
pub fn run_gramer(
    graph: &CsrGraph,
    app: &dyn DynApp,
    mut config: GramerConfig,
) -> Result<RunReport, SimError> {
    apply_engine_overrides(&mut config);
    // With a cache configured ([`set_artifact_cache`], driven by
    // `--artifact-cache`), preprocessing is memoized on disk as a `.gra`
    // artifact; reports are bit-identical either way.
    let pre = match artifact_cache() {
        Some(cache) => cache.get_or_build(graph, &config)?.0,
        None => preprocess(graph, &config)?,
    };
    if metrics_enabled() {
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let report = app.simulate_telemetry(&pre, config, &mut tel)?;
        POINT_TELEMETRY.with(|t| *t.borrow_mut() = Some(tel.summary_json()));
        Ok(report)
    } else {
        app.simulate(&pre, config)
    }
}

/// Command-line options shared by every experiment binary.
///
/// ```text
/// --jobs N             worker threads (default: available parallelism)
/// --json PATH          JSON artifact path (default: results/BENCH_<name>.json)
/// --filter SUBSTR      only run points whose dataset/app/config id contains SUBSTR
/// --list               print the point ids this binary would run, then exit
/// --resume             replay completed points from the journal, run the rest
/// --point-timeout SECS cancel any point exceeding this wall-clock budget
/// --max-retries N      re-run a failed point up to N extra times
/// --journal PATH       journal path (default: results/.journal/<name>.jsonl)
/// --metrics            record cycle-windowed telemetry per point
/// --artifact-cache DIR memoize preprocessing in DIR as .gra artifacts
/// --help               print usage, then exit
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Worker-thread count for the sweep runner.
    pub jobs: usize,
    /// JSON artifact path override (`None` → `results/BENCH_<name>.json`).
    pub json: Option<PathBuf>,
    /// Substring filter over `dataset/app/config` point ids.
    pub filter: Option<String>,
    /// Print the point ids and exit instead of running.
    pub list: bool,
    /// Replay journaled completions instead of re-running them.
    pub resume: bool,
    /// Per-point wall-clock budget in seconds.
    pub point_timeout: Option<f64>,
    /// Extra attempts for failed (not timed-out) points.
    pub max_retries: u32,
    /// Journal path override (`None` → `results/.journal/<name>.jsonl`).
    pub journal: Option<PathBuf>,
    /// Record cycle-windowed telemetry for each point and attach its
    /// rollup to the point's metrics under `"telemetry"`.
    pub metrics: bool,
    /// Directory of the on-disk `.gra` preprocessing cache
    /// ([`set_artifact_cache`]); `None` preprocesses inline per point.
    pub artifact_cache: Option<PathBuf>,
    /// Force every point's inner-loop engine ([`set_engine_overrides`]);
    /// `None` keeps each point's declared mode. Host-side only, never
    /// changes simulated results.
    pub epoch: Option<EpochMode>,
    /// Force every point's `sim_threads` ([`set_engine_overrides`]);
    /// `None` keeps each point's declared value.
    pub sim_threads: Option<usize>,
    /// Force every point's memo-table mode ([`set_engine_overrides`]);
    /// `None` keeps each point's declared mode. A model change — timing
    /// and energy move — but mining results are bit-identical.
    pub memo: Option<MemoMode>,
}

/// Usage text shared by every experiment binary.
pub const SWEEP_USAGE: &str = "\
Options:
  --jobs N             worker threads (default: available parallelism)
  --json PATH          JSON artifact path (default: results/BENCH_<name>.json)
  --filter SUBSTR      only run points whose dataset/app/config id contains SUBSTR
  --list               print the point ids this binary would run, then exit
  --resume             replay completed points from the journal, run the rest
  --point-timeout SECS cancel any point exceeding this wall-clock budget
  --max-retries N      re-run a failed point up to N extra times
  --journal PATH       journal path (default: results/.journal/<name>.jsonl)
  --metrics            record cycle-windowed telemetry per point (attached
                       to each point's metrics under \"telemetry\")
  --artifact-cache DIR memoize preprocessing in DIR as .gra artifacts
                       (keyed by graph digest + tau/budget knobs; reused
                       across runs; simulated results are unchanged)
  --epoch on|off       force every point's inner-loop engine (host-side
                       only; both modes are bit-identical)
  --sim-threads N      force every point's sim_threads config knob
                       (host-side cell parallelism; results unchanged)
  --memo on|off|BYTES  force every point's memo-table mode (a model
                       change: timing/energy move, mining results are
                       bit-identical)
  --help               print this help, then exit

Failure semantics:
  A panicking or erroring point becomes a structured \"failed\" record; a
  point past --point-timeout becomes \"timed_out\". The process exits
  non-zero only when every point of some (dataset, app) group failed.

Environment:
  GRAMER_QUICK=1   coarser, ~4x faster pass";

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            jobs: default_jobs(),
            json: None,
            filter: None,
            list: false,
            resume: false,
            point_timeout: None,
            max_retries: 0,
            journal: None,
            metrics: false,
            artifact_cache: None,
            epoch: None,
            sim_threads: None,
            memo: None,
        }
    }
}

impl SweepArgs {
    /// Parses `std::env::args()`, printing usage and exiting on `--help`
    /// or on a malformed command line.
    pub fn parse() -> SweepArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{SWEEP_USAGE}");
            std::process::exit(0);
        }
        match SweepArgs::try_parse(&args) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("error: {e}\n\n{SWEEP_USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument list (`--opt value` and `--opt=value` forms).
    pub fn try_parse<S: AsRef<str>>(args: &[S]) -> Result<SweepArgs, String> {
        let mut parsed = SweepArgs::default();
        let mut it = args.iter().map(AsRef::as_ref);
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f, Some(v.to_string())),
                None => (arg, None),
            };
            let value = |it: &mut dyn Iterator<Item = &str>| -> Result<String, String> {
                inline
                    .clone()
                    .or_else(|| it.next().map(str::to_string))
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag {
                "--jobs" => {
                    let v = value(&mut it)?;
                    parsed.jobs =
                        v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--jobs expects a positive integer, got {v:?}")
                        })?;
                }
                "--json" => parsed.json = Some(PathBuf::from(value(&mut it)?)),
                "--filter" => parsed.filter = Some(value(&mut it)?),
                "--list" => parsed.list = true,
                "--resume" => parsed.resume = true,
                "--point-timeout" => {
                    let v = value(&mut it)?;
                    parsed.point_timeout = Some(
                        v.parse::<f64>()
                            .ok()
                            .filter(|&s| s.is_finite() && s > 0.0)
                            .ok_or_else(|| {
                                format!("--point-timeout expects positive seconds, got {v:?}")
                            })?,
                    );
                }
                "--max-retries" => {
                    let v = value(&mut it)?;
                    parsed.max_retries = v.parse::<u32>().map_err(|_| {
                        format!("--max-retries expects a non-negative integer, got {v:?}")
                    })?;
                }
                "--journal" => parsed.journal = Some(PathBuf::from(value(&mut it)?)),
                "--metrics" => parsed.metrics = true,
                "--artifact-cache" => parsed.artifact_cache = Some(PathBuf::from(value(&mut it)?)),
                "--epoch" => parsed.epoch = Some(value(&mut it)?.parse()?),
                "--sim-threads" => {
                    let v = value(&mut it)?;
                    parsed.sim_threads = Some(
                        v.parse::<usize>()
                            .ok()
                            .filter(|&n| (1..=gramer::MAX_SIM_THREADS).contains(&n))
                            .ok_or_else(|| {
                                format!(
                                    "--sim-threads expects an integer in 1..={}, got {v:?}",
                                    gramer::MAX_SIM_THREADS
                                )
                            })?,
                    );
                }
                "--memo" => parsed.memo = Some(value(&mut it)?.parse()?),
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        Ok(parsed)
    }
}

/// Default worker-thread count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Standard epilogue for the experiment binaries: prints a summary of any
/// failed or timed-out points to stderr and converts the sweep's failure
/// semantics into the process exit code (non-zero only when every point
/// of some `(dataset, app)` group failed). Use as the last line of
/// `main() -> std::process::ExitCode`.
pub fn finish(result: &SweepResult) -> std::process::ExitCode {
    let failures: Vec<&PointRecord> = result.failures().collect();
    if !failures.is_empty() {
        eprintln!(
            "[{}] {} point(s) did not complete:",
            result.name,
            failures.len()
        );
        for f in &failures {
            let detail = f
                .error
                .as_ref()
                .map(|e| format!("{}: {}", e.kind, e.message))
                .unwrap_or_default();
            eprintln!(
                "[{}]   {} ({}, {} attempt(s)) {detail}",
                result.name,
                f.id(),
                f.status.as_str(),
                f.attempts,
            );
        }
    }
    for (dataset, app) in result.failed_groups() {
        eprintln!(
            "[{}] group {dataset}/{app} has no completed point",
            result.name
        );
    }
    std::process::ExitCode::from(result.exit_code())
}

/// Prints a separator line sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats seconds with sensible precision across the table's range.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.01 {
        format!("{s:.4}")
    } else if s < 1.0 {
        format!("{s:.3}")
    } else {
        format!("{s:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisors_preserve_size_ordering() {
        let small = analog(Dataset::Citeseer);
        let medium = analog(Dataset::Astro);
        assert!(small.num_vertices() > 0);
        assert!(medium.num_vertices() > 0);
    }

    #[test]
    fn variant_names() {
        assert_eq!(AppVariant::Cf(5).name(Dataset::P2p), "5-CF");
        assert!(AppVariant::Fsm.name(Dataset::Citeseer).starts_with("FSM-"));
        assert!(AppVariant::Mc(4).tracks_patterns());
        assert!(!AppVariant::Cf(3).tracks_patterns());
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0012), "0.0012");
        assert_eq!(fmt_secs(0.123), "0.123");
        assert_eq!(fmt_secs(12.345), "12.35");
    }

    #[test]
    fn sweep_args_parse_both_forms() {
        let a = SweepArgs::try_parse(&["--jobs", "4", "--filter=P2p", "--list"]).unwrap();
        assert_eq!(a.jobs, 4);
        assert_eq!(a.filter.as_deref(), Some("P2p"));
        assert!(a.list);
        assert_eq!(a.json, None);

        let b = SweepArgs::try_parse(&["--jobs=2", "--json", "out.json"]).unwrap();
        assert_eq!(b.jobs, 2);
        assert_eq!(b.json, Some(PathBuf::from("out.json")));

        let c = SweepArgs::try_parse(&["--epoch", "off", "--sim-threads=4"]).unwrap();
        assert_eq!(c.epoch, Some(EpochMode::Off));
        assert_eq!(c.sim_threads, Some(4));
        assert_eq!(SweepArgs::default().epoch, None);
        assert!(SweepArgs::try_parse(&["--epoch", "fast"]).is_err());
        assert!(SweepArgs::try_parse(&["--sim-threads", "0"]).is_err());
        assert!(SweepArgs::try_parse(&["--sim-threads", "65"]).is_err());

        let m = SweepArgs::try_parse(&["--memo", "on"]).unwrap();
        assert!(matches!(m.memo, Some(MemoMode::On { .. })));
        let m = SweepArgs::try_parse(&["--memo=65536"]).unwrap();
        assert_eq!(m.memo, Some(MemoMode::On { bytes: 65536 }));
        let m = SweepArgs::try_parse(&["--memo", "off"]).unwrap();
        assert_eq!(m.memo, Some(MemoMode::Off));
        assert_eq!(SweepArgs::default().memo, None);
        assert!(SweepArgs::try_parse(&["--memo", "sometimes"]).is_err());
        assert!(SweepArgs::try_parse(&["--memo", "7"]).is_err());
    }

    #[test]
    fn memo_override_changes_timing_not_results() {
        let g = gramer_graph::generate::barabasi_albert(120, 3, 8);
        let app = CliqueFinding::new(4).expect("valid k");
        let base = run_gramer(&g, &app, GramerConfig::default()).unwrap();
        assert!(base.memo.is_none());
        set_engine_overrides(None, None, Some(MemoMode::On { bytes: 1 << 16 }));
        let memo = run_gramer(&g, &app, GramerConfig::default()).unwrap();
        set_engine_overrides(None, None, None);
        let stats = memo.memo.expect("override forced the memo on");
        assert!(stats.hits > 0, "4-CF on a BA graph must repeat probes");
        assert_eq!(
            base.result.embeddings, memo.result.embeddings,
            "results are invariant"
        );
        assert_eq!(
            base.result.candidates_examined,
            memo.result.candidates_examined
        );
        // And clearing the override restores the declared (off) mode.
        let again = run_gramer(&g, &app, GramerConfig::default()).unwrap();
        assert!(again.memo.is_none());
        assert_eq!(again.cycles, base.cycles);
    }

    #[test]
    fn sweep_args_reject_bad_input() {
        assert!(SweepArgs::try_parse(&["--jobs"]).is_err());
        assert!(SweepArgs::try_parse(&["--jobs", "0"]).is_err());
        assert!(SweepArgs::try_parse(&["--jobs", "many"]).is_err());
        assert!(SweepArgs::try_parse(&["--bogus"]).is_err());
        assert!(SweepArgs::try_parse(&["--point-timeout", "-3"]).is_err());
        assert!(SweepArgs::try_parse(&["--point-timeout", "nan"]).is_err());
        assert!(SweepArgs::try_parse(&["--max-retries", "-1"]).is_err());
    }

    #[test]
    fn sweep_args_parse_fault_tolerance_flags() {
        let a = SweepArgs::try_parse(&[
            "--resume",
            "--point-timeout=2.5",
            "--max-retries",
            "3",
            "--journal",
            "j.jsonl",
        ])
        .unwrap();
        assert!(a.resume);
        assert_eq!(a.point_timeout, Some(2.5));
        assert_eq!(a.max_retries, 3);
        assert_eq!(a.journal, Some(PathBuf::from("j.jsonl")));

        let d = SweepArgs::try_parse::<&str>(&[]).unwrap();
        assert!(!d.resume);
        assert_eq!(d.point_timeout, None);
        assert_eq!(d.max_retries, 0);
        assert_eq!(d.journal, None);
    }

    #[test]
    fn metrics_flag_parses_and_records_a_rollup() {
        let a = SweepArgs::try_parse(&["--metrics"]).unwrap();
        assert!(a.metrics);
        let d = SweepArgs::try_parse::<&str>(&[]).unwrap();
        assert!(!d.metrics);

        // With the switch on, run_gramer stashes a telemetry rollup for
        // this thread — without changing the simulated report.
        let g = gramer_graph::generate::barabasi_albert(100, 3, 5);
        let app = CliqueFinding::new(3).expect("valid k");
        let plain = run_gramer(&g, &app, GramerConfig::default()).unwrap();
        assert!(take_point_telemetry().is_none());
        set_metrics_enabled(true);
        let recorded = run_gramer(&g, &app, GramerConfig::default()).unwrap();
        set_metrics_enabled(false);
        let tel = take_point_telemetry().expect("rollup stashed");
        assert!(tel.get("windows").and_then(JsonValue::as_u64).is_some());
        assert_eq!(plain.cycles, recorded.cycles);
        assert_eq!(plain.steps, recorded.steps);
        assert!(take_point_telemetry().is_none(), "stash is claimed once");
    }

    #[test]
    fn artifact_cache_flag_parses_and_reports_match() {
        let a = SweepArgs::try_parse(&["--artifact-cache", "cachedir"]).unwrap();
        assert_eq!(a.artifact_cache, Some(PathBuf::from("cachedir")));
        let b = SweepArgs::try_parse(&["--artifact-cache=cd2"]).unwrap();
        assert_eq!(b.artifact_cache, Some(PathBuf::from("cd2")));
        let d = SweepArgs::try_parse::<&str>(&[]).unwrap();
        assert_eq!(d.artifact_cache, None);

        // Cached runs produce bit-identical reports to inline ones, both
        // on the cold (store) and warm (load) pass.
        let dir = std::env::temp_dir().join(format!(
            "gramer-bench-artifact-cache-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let g = gramer_graph::generate::barabasi_albert(120, 3, 8);
        let app = CliqueFinding::new(3).expect("valid k");
        let inline = run_gramer(&g, &app, GramerConfig::default()).unwrap();
        set_artifact_cache(Some(dir.as_path())).unwrap();
        let cold = run_gramer(&g, &app, GramerConfig::default()).unwrap();
        let warm = run_gramer(&g, &app, GramerConfig::default()).unwrap();
        set_artifact_cache(None).unwrap();
        let as_json = |r: &RunReport| r.to_json_value().to_string();
        assert_eq!(as_json(&inline), as_json(&cold));
        assert_eq!(as_json(&inline), as_json(&warm));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analog_cache_returns_same_graph() {
        let cache = AnalogCache::new();
        let a = cache.get(Dataset::Citeseer) as *const CsrGraph;
        let b = cache.get(Dataset::Citeseer) as *const CsrGraph;
        assert_eq!(a, b, "second lookup must hit the cached graph");
    }
}
