//! Shared harness for regenerating every table and figure of the GRAMER
//! paper's evaluation (§VI).
//!
//! Each binary in `src/bin/` reproduces one artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig3` | pipeline-stall breakdown on the CPU baseline |
//! | `fig5` | extension locality per iteration (top-5% access shares) |
//! | `fig8` | ON_k accuracy vs computation overhead |
//! | `table2` | resource utilisation and clock rate |
//! | `table3` | running time: GRAMER vs Fractal vs RStream |
//! | `fig11` | energy and total time (incl. preprocessing) |
//! | `fig12` | LAMH vs Uniform-LRU vs Static+LRU |
//! | `table4` | clock rate w/o AB, w/ AB, w/ AB + compaction |
//! | `fig13` | pipeline-slot sweep and work-stealing speedup |
//! | `fig14` | τ and λ sensitivity |
//! | `ablation` | design-choice ablations called out in DESIGN.md |
//!
//! The paper's datasets are generated as scaled power-law analogs (see
//! `gramer_graph::datasets`); divisors below keep each simulated cell in
//! the seconds range on a laptop while preserving the small/medium/large
//! ordering. Set `GRAMER_QUICK=1` for a ~4× faster, coarser pass.

use gramer::{preprocess, GramerConfig, Preprocessed, RunReport, Simulator};
use gramer_graph::datasets::Dataset;
use gramer_graph::CsrGraph;
use gramer_mining::apps::{CliqueFinding, FrequentSubgraphMining, MotifCounting};
use gramer_mining::EcmApp;

/// Whether the quick (coarser) mode is enabled via `GRAMER_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("GRAMER_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Scale divisor applied to each dataset so a software simulator can
/// finish the combinatorial workloads (documented in DESIGN.md §1).
pub fn divisor(d: Dataset) -> usize {
    let base = match d {
        Dataset::Citeseer => 1,
        Dataset::P2p => 2,
        Dataset::Astro => 16,
        Dataset::Mico => 100,
        Dataset::Patents => 1500,
        Dataset::Youtube => 6000,
        Dataset::LiveJournal => 6400,
    };
    if quick_mode() {
        base * 4
    } else {
        base
    }
}

/// Generates the scaled analog of `d`.
pub fn analog(d: Dataset) -> CsrGraph {
    d.generate_scaled(divisor(d))
}

/// FSM occurrence threshold for `d`, scaled like the graph (the paper
/// uses 2K for small/medium graphs, 20K for Patents, 250K for YT/LJ).
pub fn fsm_threshold(d: Dataset) -> u64 {
    let full: u64 = match d {
        Dataset::Patents => 20_000,
        Dataset::Youtube | Dataset::LiveJournal => 250_000,
        _ => 2_000,
    };
    (full / divisor(d) as u64).max(2)
}

/// The application variants of Table III, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppVariant {
    /// k-clique finding.
    Cf(usize),
    /// k-motif counting.
    Mc(usize),
    /// FSM with the dataset-scaled threshold.
    Fsm,
}

impl AppVariant {
    /// All Table III variants.
    pub const TABLE3: [AppVariant; 6] = [
        AppVariant::Cf(3),
        AppVariant::Cf(4),
        AppVariant::Cf(5),
        AppVariant::Mc(3),
        AppVariant::Mc(4),
        AppVariant::Fsm,
    ];

    /// Display name, with the FSM threshold resolved per dataset.
    pub fn name(self, d: Dataset) -> String {
        match self {
            AppVariant::Cf(k) => format!("{k}-CF"),
            AppVariant::Mc(k) => format!("{k}-MC"),
            AppVariant::Fsm => format!("FSM-{}", fsm_threshold(d)),
        }
    }

    /// Whether this variant tracks patterns (MC/FSM columns of Tables II
    /// and IV).
    pub fn tracks_patterns(self) -> bool {
        !matches!(self, AppVariant::Cf(_))
    }

    /// Runs `f` with the concrete application instantiated for `d`.
    pub fn with_app<R>(self, d: Dataset, f: impl FnOnce(&dyn DynApp) -> R) -> R {
        match self {
            AppVariant::Cf(k) => f(&CliqueFinding::new(k).expect("valid k")),
            AppVariant::Mc(k) => f(&MotifCounting::new(k).expect("valid k")),
            AppVariant::Fsm => f(&FrequentSubgraphMining::new(fsm_threshold(d))),
        }
    }
}

/// Object-safe adapter over [`EcmApp`] so harness code can be generic over
/// variants at runtime.
pub trait DynApp {
    /// See [`EcmApp::name`].
    fn name(&self) -> String;
    /// See [`EcmApp::max_vertices`].
    fn max_vertices(&self) -> usize;
    /// Runs the GRAMER simulator on a preprocessed graph.
    fn simulate(&self, pre: &Preprocessed, config: GramerConfig) -> RunReport;
    /// Profiles the workload on the modeled CPU.
    fn profile(&self, graph: &CsrGraph) -> gramer_baselines::CpuProfile;
}

impl<A: EcmApp> DynApp for A {
    fn name(&self) -> String {
        EcmApp::name(self)
    }

    fn max_vertices(&self) -> usize {
        EcmApp::max_vertices(self)
    }

    fn simulate(&self, pre: &Preprocessed, config: GramerConfig) -> RunReport {
        Simulator::new(pre, config).run(self)
    }

    fn profile(&self, graph: &CsrGraph) -> gramer_baselines::CpuProfile {
        gramer_baselines::profile_on_cpu(graph, self)
    }
}

/// Runs GRAMER end-to-end (preprocess + simulate) with `config`.
pub fn run_gramer(graph: &CsrGraph, app: &dyn DynApp, config: GramerConfig) -> RunReport {
    let pre = preprocess(graph, &config);
    app.simulate(&pre, config)
}

/// Prints a separator line sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// A tiny CSV writer for machine-readable experiment exports (written
/// under `results/`).
#[derive(Debug)]
pub struct CsvWriter {
    path: std::path::PathBuf,
    rows: Vec<String>,
}

impl CsvWriter {
    /// Starts a CSV with the given header columns.
    pub fn new(name: &str, header: &[&str]) -> Self {
        CsvWriter {
            path: std::path::Path::new("results").join(name),
            rows: vec![header.join(",")],
        }
    }

    /// Appends a row; fields containing commas or quotes are quoted.
    pub fn row<I, S>(&mut self, fields: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let quoted: Vec<String> = fields
            .into_iter()
            .map(|f| {
                let f = f.as_ref();
                if f.contains(',') || f.contains('"') {
                    format!("\"{}\"", f.replace('"', "\"\""))
                } else {
                    f.to_string()
                }
            })
            .collect();
        self.rows.push(quoted.join(","));
    }

    /// Writes the file, creating `results/` if needed. Failures are
    /// reported on stderr but never abort the experiment.
    pub fn finish(self) {
        let write = || -> std::io::Result<()> {
            if let Some(dir) = self.path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            std::fs::write(&self.path, self.rows.join("\n") + "\n")
        };
        match write() {
            Ok(()) => println!("\n[csv] wrote {}", self.path.display()),
            Err(e) => eprintln!("[csv] could not write {}: {e}", self.path.display()),
        }
    }
}

/// Formats seconds with sensible precision across the table's range.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.01 {
        format!("{s:.4}")
    } else if s < 1.0 {
        format!("{s:.3}")
    } else {
        format!("{s:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisors_preserve_size_ordering() {
        let small = analog(Dataset::Citeseer);
        let medium = analog(Dataset::Astro);
        assert!(small.num_vertices() > 0);
        assert!(medium.num_vertices() > 0);
    }

    #[test]
    fn variant_names() {
        assert_eq!(AppVariant::Cf(5).name(Dataset::P2p), "5-CF");
        assert!(AppVariant::Fsm.name(Dataset::Citeseer).starts_with("FSM-"));
        assert!(AppVariant::Mc(4).tracks_patterns());
        assert!(!AppVariant::Cf(3).tracks_patterns());
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0012), "0.0012");
        assert_eq!(fmt_secs(0.123), "0.123");
        assert_eq!(fmt_secs(12.345), "12.35");
    }
}
