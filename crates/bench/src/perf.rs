//! The `BENCH_core.json` document written by the `perf` binary — the
//! repo's simulator-throughput trajectory (see EXPERIMENTS.md).
//!
//! Each workload is run several times (default 3); the document records
//! the median and best wall time / throughput so the trajectory is
//! robust to scheduler noise, while the *simulated* quantities are
//! asserted identical across repeats before the document is built.
//!
//! Schema (`schema_version: 2`):
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "bench": "core",
//!   "git_rev": "abc1234",
//!   "quick": false,
//!   "repeats": 3,
//!   "workloads": [
//!     { "name": "BA(3000,4)x4-CF",
//!       "wall_seconds_median": 0.0, "wall_seconds_best": 0.0,
//!       "steps_per_sec_median": 0.0, "steps_per_sec_best": 0.0,
//!       "steps": 0, "cycles": 0, "embeddings": 0 }
//!   ],
//!   "total": { "wall_seconds_median": 0.0, "wall_seconds_best": 0.0,
//!              "steps": 0, "steps_per_sec_median": 0.0,
//!              "steps_per_sec_best": 0.0 },
//!   "peak_rss_kb": 0
//! }
//! ```
//!
//! `cycles`, `steps` and `embeddings` are *simulated* quantities and must
//! be identical across hosts, repeats and PRs (they detect semantic
//! drift); the wall/throughput fields and `peak_rss_kb` measure the
//! simulator implementation and are the trajectory being tracked.

use gramer::json::JsonValue;
use gramer::RunReport;

/// The repeated timings of one pinned workload.
pub struct WorkloadRuns {
    /// Workload cell name (e.g. `"BA(3000,4)x4-CF"`).
    pub name: &'static str,
    /// Wall seconds of each repeat (preprocess + simulate), in run order.
    pub walls: Vec<f64>,
    /// The run report. Simulated fields are identical across repeats
    /// (the perf binary asserts this before building the document).
    pub report: RunReport,
}

impl WorkloadRuns {
    /// Median wall seconds over the repeats.
    pub fn wall_median(&self) -> f64 {
        median(&self.walls)
    }

    /// Best (minimum) wall seconds over the repeats.
    pub fn wall_best(&self) -> f64 {
        self.walls.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Median of a non-empty slice (midpoint for odd lengths, mean of the
/// two central values for even lengths).
pub fn median(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Builds the `BENCH_core.json` document text (trailing newline
/// included, insertion-ordered keys, byte-stable for fixed inputs).
pub fn perf_document(
    git_rev: &str,
    quick: bool,
    repeats: usize,
    workloads: &[WorkloadRuns],
    peak_rss_kb: u64,
) -> String {
    let total_median: f64 = workloads.iter().map(WorkloadRuns::wall_median).sum();
    let total_best: f64 = workloads.iter().map(WorkloadRuns::wall_best).sum();
    let total_steps: u64 = workloads.iter().map(|w| w.report.steps).sum();
    let cells = workloads.iter().map(|w| {
        let steps = w.report.steps as f64;
        JsonValue::object([
            ("name", JsonValue::from(w.name)),
            ("wall_seconds_median", JsonValue::from(w.wall_median())),
            ("wall_seconds_best", JsonValue::from(w.wall_best())),
            (
                "steps_per_sec_median",
                JsonValue::from(steps / w.wall_median().max(1e-9)),
            ),
            (
                "steps_per_sec_best",
                JsonValue::from(steps / w.wall_best().max(1e-9)),
            ),
            ("steps", JsonValue::from(w.report.steps)),
            ("cycles", JsonValue::from(w.report.cycles)),
            ("embeddings", JsonValue::from(w.report.result.embeddings)),
        ])
    });
    let doc = JsonValue::object([
        ("schema_version", JsonValue::from(2u64)),
        ("bench", JsonValue::from("core")),
        ("git_rev", JsonValue::from(git_rev)),
        ("quick", JsonValue::from(quick)),
        ("repeats", JsonValue::from(repeats as u64)),
        ("workloads", JsonValue::array(cells)),
        (
            "total",
            JsonValue::object([
                ("wall_seconds_median", JsonValue::from(total_median)),
                ("wall_seconds_best", JsonValue::from(total_best)),
                ("steps", JsonValue::from(total_steps)),
                (
                    "steps_per_sec_median",
                    JsonValue::from(total_steps as f64 / total_median.max(1e-9)),
                ),
                (
                    "steps_per_sec_best",
                    JsonValue::from(total_steps as f64 / total_best.max(1e-9)),
                ),
            ]),
        ),
        ("peak_rss_kb", JsonValue::from(peak_rss_kb)),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_is_parseable_and_carries_schema() {
        let text = perf_document("deadbee", false, 3, &[], 1234);
        let doc = JsonValue::parse(text.trim()).unwrap();
        assert_eq!(doc.get("schema_version"), Some(&JsonValue::UInt(2)));
        assert_eq!(
            doc.get("git_rev"),
            Some(&JsonValue::Str("deadbee".into()))
        );
        assert_eq!(doc.get("repeats"), Some(&JsonValue::UInt(3)));
        assert_eq!(doc.get("peak_rss_kb"), Some(&JsonValue::UInt(1234)));
        assert!(matches!(doc.get("workloads"), Some(JsonValue::Array(a)) if a.is_empty()));
        let total = doc.get("total").unwrap();
        assert!(total.get("wall_seconds_median").is_some());
        assert!(total.get("steps_per_sec_best").is_some());
    }

    #[test]
    fn median_handles_odd_even_and_unsorted() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[]), 0.0);
    }
}
