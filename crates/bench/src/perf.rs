//! The `BENCH_core.json` document written by the `perf` binary — the
//! repo's simulator-throughput trajectory (see EXPERIMENTS.md).
//!
//! Schema (`schema_version: 1`):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "core",
//!   "git_rev": "abc1234",
//!   "quick": false,
//!   "workloads": [
//!     { "name": "BA(3000,4)x4-CF", "wall_seconds": 0.0, "steps": 0,
//!       "steps_per_sec": 0.0, "cycles": 0, "embeddings": 0 }
//!   ],
//!   "total": { "wall_seconds": 0.0, "steps": 0, "steps_per_sec": 0.0 },
//!   "peak_rss_kb": 0
//! }
//! ```
//!
//! `cycles`, `steps` and `embeddings` are *simulated* quantities and must
//! be identical across hosts and PRs (they detect semantic drift);
//! `wall_seconds`, `steps_per_sec` and `peak_rss_kb` measure the
//! simulator implementation and are the trajectory being tracked.

use gramer::json::JsonValue;
use gramer::RunReport;

/// Builds the `BENCH_core.json` document text (trailing newline
/// included, insertion-ordered keys, byte-stable for fixed inputs).
pub fn perf_document(
    git_rev: &str,
    quick: bool,
    workloads: &[(&'static str, f64, RunReport)],
    total_steps_per_sec: f64,
    peak_rss_kb: u64,
) -> String {
    let total_seconds: f64 = workloads.iter().map(|(_, w, _)| *w).sum();
    let total_steps: u64 = workloads.iter().map(|(_, _, r)| r.steps).sum();
    let cells = workloads.iter().map(|(name, wall, report)| {
        JsonValue::object([
            ("name", JsonValue::from(*name)),
            ("wall_seconds", JsonValue::from(*wall)),
            ("steps", JsonValue::from(report.steps)),
            (
                "steps_per_sec",
                JsonValue::from(report.steps as f64 / wall.max(1e-9)),
            ),
            ("cycles", JsonValue::from(report.cycles)),
            ("embeddings", JsonValue::from(report.result.embeddings)),
        ])
    });
    let doc = JsonValue::object([
        ("schema_version", JsonValue::from(1u64)),
        ("bench", JsonValue::from("core")),
        ("git_rev", JsonValue::from(git_rev)),
        ("quick", JsonValue::from(quick)),
        ("workloads", JsonValue::array(cells)),
        (
            "total",
            JsonValue::object([
                ("wall_seconds", JsonValue::from(total_seconds)),
                ("steps", JsonValue::from(total_steps)),
                ("steps_per_sec", JsonValue::from(total_steps_per_sec)),
            ]),
        ),
        ("peak_rss_kb", JsonValue::from(peak_rss_kb)),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_is_parseable_and_carries_schema() {
        let text = perf_document("deadbee", false, &[], 0.0, 1234);
        let doc = JsonValue::parse(text.trim()).unwrap();
        assert_eq!(doc.get("schema_version"), Some(&JsonValue::UInt(1)));
        assert_eq!(
            doc.get("git_rev"),
            Some(&JsonValue::Str("deadbee".into()))
        );
        assert_eq!(doc.get("peak_rss_kb"), Some(&JsonValue::UInt(1234)));
        assert!(matches!(doc.get("workloads"), Some(JsonValue::Array(a)) if a.is_empty()));
    }
}
