//! The `BENCH_core.json` document written by the `perf` binary — the
//! repo's simulator-throughput trajectory (see EXPERIMENTS.md).
//!
//! Each workload is run several times (default 3); the document records
//! the median and best wall time / throughput so the trajectory is
//! robust to scheduler noise, while the *simulated* quantities are
//! asserted identical across repeats before the document is built.
//!
//! Schema (`schema_version: 4` — v3 added the `epoch`/`sim_threads`
//! engine knobs per workload; v4 added the `memo` knob and the
//! `memo_hits` simulated counter):
//!
//! ```json
//! {
//!   "schema_version": 4,
//!   "bench": "core",
//!   "git_rev": "abc1234",
//!   "quick": false,
//!   "repeats": 3,
//!   "workloads": [
//!     { "name": "BA(3000,4)x4-CF", "epoch": "on", "sim_threads": 1,
//!       "memo": "off", "memo_hits": 0,
//!       "wall_seconds_median": 0.0, "wall_seconds_best": 0.0,
//!       "steps_per_sec_median": 0.0, "steps_per_sec_best": 0.0,
//!       "steps": 0, "cycles": 0, "embeddings": 0 }
//!   ],
//!   "total": { "wall_seconds_median": 0.0, "wall_seconds_best": 0.0,
//!              "steps": 0, "steps_per_sec_median": 0.0,
//!              "steps_per_sec_best": 0.0 },
//!   "peak_rss_kb": 0
//! }
//! ```
//!
//! `cycles`, `steps` and `embeddings` are *simulated* quantities and must
//! be identical across hosts, repeats and PRs (they detect semantic
//! drift); the wall/throughput fields and `peak_rss_kb` measure the
//! simulator implementation and are the trajectory being tracked.

use gramer::json::JsonValue;
use gramer::RunReport;

/// The repeated timings of one pinned workload.
pub struct WorkloadRuns {
    /// Workload cell name (e.g. `"BA(3000,4)x4-CF"`).
    pub name: &'static str,
    /// Inner-loop engine the cell ran under (`"on"` = epoch-batched,
    /// `"off"` = reference interleaving). Recorded so the trajectory
    /// stays interpretable: a number is only comparable to numbers
    /// measured under the same engine.
    pub epoch: &'static str,
    /// `sim_threads` the cell ran under. The pinned cells are measured
    /// serially (CI has one CPU), so this is 1 unless the binary was
    /// invoked with `--sim-threads`.
    pub sim_threads: u64,
    /// Memo-table mode the cell ran under: `"off"` or the byte budget
    /// in decimal. Unlike `epoch`/`sim_threads` this is a model knob —
    /// cells with different `memo` values have legitimately different
    /// `cycles`, so the drift check only ever compares same-name cells.
    pub memo: String,
    /// Wall seconds of each repeat (preprocess + simulate), in run order.
    pub walls: Vec<f64>,
    /// The run report. Simulated fields are identical across repeats
    /// (the perf binary asserts this before building the document).
    pub report: RunReport,
}

impl WorkloadRuns {
    /// Median wall seconds over the repeats.
    pub fn wall_median(&self) -> f64 {
        median(&self.walls)
    }

    /// Best (minimum) wall seconds over the repeats.
    pub fn wall_best(&self) -> f64 {
        self.walls.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Median of a non-empty slice (midpoint for odd lengths, mean of the
/// two central values for even lengths).
pub fn median(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Builds the `BENCH_core.json` document text (trailing newline
/// included, insertion-ordered keys, byte-stable for fixed inputs).
pub fn perf_document(
    git_rev: &str,
    quick: bool,
    repeats: usize,
    workloads: &[WorkloadRuns],
    peak_rss_kb: u64,
) -> String {
    let total_median: f64 = workloads.iter().map(WorkloadRuns::wall_median).sum();
    let total_best: f64 = workloads.iter().map(WorkloadRuns::wall_best).sum();
    let total_steps: u64 = workloads.iter().map(|w| w.report.steps).sum();
    let cells = workloads.iter().map(|w| {
        let steps = w.report.steps as f64;
        JsonValue::object([
            ("name", JsonValue::from(w.name)),
            ("epoch", JsonValue::from(w.epoch)),
            ("sim_threads", JsonValue::from(w.sim_threads)),
            ("memo", JsonValue::from(w.memo.as_str())),
            (
                "memo_hits",
                JsonValue::from(w.report.memo.map_or(0, |s| s.hits)),
            ),
            ("wall_seconds_median", JsonValue::from(w.wall_median())),
            ("wall_seconds_best", JsonValue::from(w.wall_best())),
            (
                "steps_per_sec_median",
                JsonValue::from(steps / w.wall_median().max(1e-9)),
            ),
            (
                "steps_per_sec_best",
                JsonValue::from(steps / w.wall_best().max(1e-9)),
            ),
            ("steps", JsonValue::from(w.report.steps)),
            ("cycles", JsonValue::from(w.report.cycles)),
            ("embeddings", JsonValue::from(w.report.result.embeddings)),
        ])
    });
    let doc = JsonValue::object([
        ("schema_version", JsonValue::from(4u64)),
        ("bench", JsonValue::from("core")),
        ("git_rev", JsonValue::from(git_rev)),
        ("quick", JsonValue::from(quick)),
        ("repeats", JsonValue::from(repeats as u64)),
        ("workloads", JsonValue::array(cells)),
        (
            "total",
            JsonValue::object([
                ("wall_seconds_median", JsonValue::from(total_median)),
                ("wall_seconds_best", JsonValue::from(total_best)),
                ("steps", JsonValue::from(total_steps)),
                (
                    "steps_per_sec_median",
                    JsonValue::from(total_steps as f64 / total_median.max(1e-9)),
                ),
                (
                    "steps_per_sec_best",
                    JsonValue::from(total_steps as f64 / total_best.max(1e-9)),
                ),
            ]),
        ),
        ("peak_rss_kb", JsonValue::from(peak_rss_kb)),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

/// Result of comparing a freshly measured perf document against a
/// committed baseline (`perf --check`).
#[derive(Debug, Default)]
pub struct BaselineCheck {
    /// Human-readable comparison lines (always produced).
    pub info: Vec<String>,
    /// Violations: drifted simulated fields or a throughput regression
    /// beyond the threshold. Empty means the check passed.
    pub violations: Vec<String>,
}

impl BaselineCheck {
    /// Whether the fresh document is acceptable against the baseline.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn workload_name(cell: &JsonValue) -> String {
    match cell.get("name") {
        Some(JsonValue::Str(s)) => s.clone(),
        _ => "<unnamed>".to_string(),
    }
}

/// Compares `fresh` (a just-measured perf document) against `baseline`
/// (the committed `results/BENCH_core.json`).
///
/// Two classes of checks, mirroring the document's two classes of
/// fields:
///
/// * **Simulated** quantities (`steps`, `cycles`, `embeddings` per
///   workload) must be *identical* — any drift means the simulator's
///   semantics changed, which a perf-neutral PR must not do.
/// * **Host throughput** (`total.steps_per_sec_median`) may regress at
///   most `threshold_pct` percent below the baseline; being faster is
///   always fine.
pub fn check_against_baseline(
    fresh: &JsonValue,
    baseline: &JsonValue,
    threshold_pct: f64,
) -> BaselineCheck {
    let mut check = BaselineCheck::default();

    if fresh.get("quick") != baseline.get("quick") {
        check
            .violations
            .push("quick mode differs between the fresh run and the baseline document".to_string());
    }

    let cells = |doc: &JsonValue| -> Vec<JsonValue> {
        match doc.get("workloads") {
            Some(JsonValue::Array(a)) => a.clone(),
            _ => Vec::new(),
        }
    };
    let fresh_cells = cells(fresh);
    let base_cells = cells(baseline);
    if base_cells.is_empty() {
        check
            .violations
            .push("baseline document has no workloads".to_string());
    }
    for base in &base_cells {
        let name = workload_name(base);
        let Some(mine) = fresh_cells
            .iter()
            .find(|c| c.get("name") == base.get("name"))
        else {
            check
                .violations
                .push(format!("workload {name} missing from the fresh run"));
            continue;
        };
        for field in ["steps", "cycles", "embeddings", "memo_hits"] {
            let b = base.get(field).and_then(JsonValue::as_u64);
            let f = mine.get(field).and_then(JsonValue::as_u64);
            if b != f {
                check.violations.push(format!(
                    "{name}: simulated {field} drifted (baseline {b:?}, fresh {f:?})"
                ));
            }
        }
    }

    let tput = |doc: &JsonValue| {
        doc.get("total")
            .and_then(|t| t.get("steps_per_sec_median"))
            .and_then(JsonValue::as_f64)
    };
    match (tput(fresh), tput(baseline)) {
        (Some(f), Some(b)) if b > 0.0 => {
            let floor = b * (1.0 - threshold_pct / 100.0);
            check.info.push(format!(
                "median throughput: fresh {f:.0} steps/s vs baseline {b:.0} ({:+.1}%), floor {floor:.0} (-{threshold_pct}%)",
                100.0 * (f - b) / b
            ));
            if f < floor {
                check.violations.push(format!(
                    "median throughput regressed more than {threshold_pct}%: {f:.0} < {floor:.0} steps/s"
                ));
            }
        }
        _ => check
            .violations
            .push("total.steps_per_sec_median missing from fresh or baseline document".to_string()),
    }
    check
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_is_parseable_and_carries_schema() {
        let text = perf_document("deadbee", false, 3, &[], 1234);
        let doc = JsonValue::parse(text.trim()).unwrap();
        assert_eq!(doc.get("schema_version"), Some(&JsonValue::UInt(4)));
        assert_eq!(doc.get("git_rev"), Some(&JsonValue::Str("deadbee".into())));
        assert_eq!(doc.get("repeats"), Some(&JsonValue::UInt(3)));
        assert_eq!(doc.get("peak_rss_kb"), Some(&JsonValue::UInt(1234)));
        assert!(matches!(doc.get("workloads"), Some(JsonValue::Array(a)) if a.is_empty()));
        let total = doc.get("total").unwrap();
        assert!(total.get("wall_seconds_median").is_some());
        assert!(total.get("steps_per_sec_best").is_some());
    }

    #[test]
    fn document_records_engine_knobs_per_workload() {
        let g = gramer_graph::generate::cycle(12);
        let cfg = gramer::GramerConfig::default();
        let pre = gramer::preprocess(&g, &cfg).unwrap();
        let app = gramer_mining::apps::CliqueFinding::new(3).unwrap();
        let report = gramer::Simulator::new(&pre, cfg)
            .unwrap()
            .run(&app)
            .unwrap();
        let w = WorkloadRuns {
            name: "W",
            epoch: "off",
            sim_threads: 4,
            memo: "65536".to_string(),
            walls: vec![0.5],
            report,
        };
        let text = perf_document("rev", false, 1, &[w], 0);
        let doc = JsonValue::parse(text.trim()).unwrap();
        let cells = match doc.get("workloads") {
            Some(JsonValue::Array(a)) => a.clone(),
            other => panic!("workloads missing: {other:?}"),
        };
        assert_eq!(cells[0].get("epoch"), Some(&JsonValue::Str("off".into())));
        assert_eq!(cells[0].get("sim_threads"), Some(&JsonValue::UInt(4)));
        assert_eq!(cells[0].get("memo"), Some(&JsonValue::Str("65536".into())));
        // The cell ran with NoMemo, so the pinned counter is zero.
        assert_eq!(cells[0].get("memo_hits"), Some(&JsonValue::UInt(0)));
    }

    fn doc(steps: u64, cycles: u64, tput: f64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"schema_version": 2, "quick": false,
                 "workloads": [{{"name": "W", "steps": {steps}, "cycles": {cycles}, "embeddings": 7}}],
                 "total": {{"steps_per_sec_median": {tput}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn baseline_check_accepts_identical_and_faster_runs() {
        let base = doc(100, 50, 1000.0);
        assert!(check_against_baseline(&doc(100, 50, 1000.0), &base, 10.0).ok());
        let faster = check_against_baseline(&doc(100, 50, 2000.0), &base, 10.0);
        assert!(faster.ok(), "{:?}", faster.violations);
        assert!(!faster.info.is_empty());
        // Within the threshold: 5% below floor of -10%.
        assert!(check_against_baseline(&doc(100, 50, 950.0), &base, 10.0).ok());
    }

    #[test]
    fn baseline_check_flags_regressions_and_drift() {
        let base = doc(100, 50, 1000.0);
        let slow = check_against_baseline(&doc(100, 50, 800.0), &base, 10.0);
        assert!(!slow.ok());
        assert!(slow.violations[0].contains("regressed"));
        let drift = check_against_baseline(&doc(101, 50, 1000.0), &base, 10.0);
        assert!(!drift.ok());
        assert!(drift.violations[0].contains("steps drifted"));
        let missing = check_against_baseline(
            &JsonValue::parse(
                r#"{"quick": false, "workloads": [], "total": {"steps_per_sec_median": 1000.0}}"#,
            )
            .unwrap(),
            &base,
            10.0,
        );
        assert!(!missing.ok());
        assert!(missing.violations[0].contains("missing from the fresh run"));
    }

    #[test]
    fn median_handles_odd_even_and_unsorted() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[]), 0.0);
    }
}
