//! Table II: resource utilisation and clock rate.
//!
//! RTL synthesis is unavailable, so this prints the analytic area and
//! clock models of the `gramer` crate (substitution documented in
//! DESIGN.md). The models are calibrated once against the CF column; the
//! FSM/MC differences follow from their pattern-tracking state.

use gramer::pipeline::{clock_rate_mhz, AncestorMode};
use gramer::{area, GramerConfig, MemoryBudget};
use gramer_bench::{rule, PointOutput, Sweep, SweepArgs};

const APPS: [(&str, bool); 3] = [("CF", false), ("FSM", true), ("MC", true)];

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();

    let mut sweep = Sweep::new("table2");
    for (app, patterns) in APPS {
        sweep.point("XCU250", app, "analytic", move || {
            let cfg = GramerConfig::default();
            let items = match cfg.budget {
                MemoryBudget::Items(n) => n,
                MemoryBudget::Fraction(_) => unreachable!("default budget is absolute"),
            };
            let a = area::estimate(&cfg, items, patterns);
            PointOutput::new()
                .metric("lut", a.lut)
                .metric("register", a.register)
                .metric("bram", a.bram)
                .metric(
                    "clock_mhz",
                    clock_rate_mhz(&cfg, AncestorMode::BufferedCompacted, patterns),
                )
        });
    }
    let result = sweep.execute(&args);

    println!("Table II — resource utilisation and clock rate (modeled XCU250)");
    println!("(paper: LUT ~25.4-25.5%, Register ~13.1%, BRAM ~65.7%, 207-213 MHz)\n");
    println!("{:<12} {:>10} {:>10} {:>10}", "", "CF", "FSM", "MC");
    rule(46);

    let cell = |app: &str, key: &str| {
        result
            .find("XCU250", app, "analytic")
            .and_then(|r| r.metric_f64(key))
    };
    for (label, key) in [("LUT", "lut"), ("Register", "register"), ("BRAM", "bram")] {
        print!("{label:<12}");
        for (app, _) in APPS {
            match cell(app, key) {
                Some(x) => print!(" {:>10}", format!("{:.2}%", 100.0 * x)),
                None => print!(" {:>10}", "-"),
            }
        }
        println!();
    }
    print!("{:<12}", "Clock Rate");
    for (app, _) in APPS {
        match cell(app, "clock_mhz") {
            Some(mhz) => print!(" {:>10}", format!("{mhz:.0}MHz")),
            None => print!(" {:>10}", "-"),
        }
    }
    println!();
    gramer_bench::finish(&result)
}
