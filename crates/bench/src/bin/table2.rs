//! Table II: resource utilisation and clock rate.
//!
//! RTL synthesis is unavailable, so this prints the analytic area and
//! clock models of the `gramer` crate (substitution documented in
//! DESIGN.md). The models are calibrated once against the CF column; the
//! FSM/MC differences follow from their pattern-tracking state.

use gramer::pipeline::{clock_rate_mhz, AncestorMode};
use gramer::{area, GramerConfig, MemoryBudget};
use gramer_bench::rule;

fn main() {
    let cfg = GramerConfig::default();
    let items = match cfg.budget {
        MemoryBudget::Items(n) => n,
        MemoryBudget::Fraction(_) => unreachable!("default budget is absolute"),
    };

    println!("Table II — resource utilisation and clock rate (modeled XCU250)");
    println!("(paper: LUT ~25.4-25.5%, Register ~13.1%, BRAM ~65.7%, 207-213 MHz)\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "", "CF", "FSM", "MC"
    );
    rule(46);

    let cf = area::estimate(&cfg, items, false);
    let mcfsm = area::estimate(&cfg, items, true);
    let pct = |x: f64| format!("{:.2}%", 100.0 * x);
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "LUT",
        pct(cf.lut),
        pct(mcfsm.lut),
        pct(mcfsm.lut)
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "Register",
        pct(cf.register),
        pct(mcfsm.register),
        pct(mcfsm.register)
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "BRAM",
        pct(cf.bram),
        pct(mcfsm.bram),
        pct(mcfsm.bram)
    );
    let clock = |patterns| {
        format!(
            "{:.0}MHz",
            clock_rate_mhz(&cfg, AncestorMode::BufferedCompacted, patterns)
        )
    };
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "Clock Rate",
        clock(false),
        clock(true),
        clock(true)
    );
}
