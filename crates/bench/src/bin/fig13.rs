//! Figure 13: (a) performance while sweeping the number of pipeline slots
//! 1 → 16, and (b) the speedup from work stealing.
//!
//! The paper sees near-linear scaling up to 8 slots (except on tiny
//! Citeseer), diminishing returns 8 → 16 from memory-partition pressure,
//! and 1.32–1.90× from work stealing with Mico (the most skewed graph)
//! benefiting most.

use gramer::GramerConfig;
use gramer_bench::{analog, run_gramer, rule, AppVariant};
use gramer_graph::datasets::Dataset;

fn main() {
    let variant = AppVariant::Cf(5); // the paper sweeps 5-CF
    let graphs: &[Dataset] = if gramer_bench::quick_mode() {
        &[Dataset::Citeseer, Dataset::P2p, Dataset::Patents]
    } else {
        &[
            Dataset::Citeseer,
            Dataset::P2p,
            Dataset::Astro,
            Dataset::Mico,
            Dataset::Patents,
            Dataset::Youtube,
            Dataset::LiveJournal,
        ]
    };

    println!("Figure 13(a) — performance vs pipeline slots (normalised to 1 slot, 5-CF)");
    println!("(paper: near-linear to 8 slots except Citeseer, flattening 8->16)\n");
    print!("{:<10}", "Graph");
    for slots in [1, 2, 4, 8, 16] {
        print!("{:>9}", format!("{slots} slots"));
    }
    println!();
    rule(55);

    for &d in graphs {
        let g = analog(d);
        let mut base = None;
        print!("{:<10}", d.name());
        for slots in [1usize, 2, 4, 8, 16] {
            let cfg = GramerConfig {
                slots_per_pu: slots,
                ..GramerConfig::default()
            };
            let cycles = variant.with_app(d, |app| run_gramer(&g, app, cfg).cycles);
            let b = *base.get_or_insert(cycles);
            print!("{:>8.2}x", b as f64 / cycles as f64);
        }
        println!();
    }

    println!("\nFigure 13(b) — work-stealing speedup (5-CF, 16 slots)");
    println!("(paper: 1.32-1.90x, skewed Mico benefits most)\n");
    println!("{:<10} {:>12} {:>12} {:>9}", "Graph", "w/o steal", "w/ steal", "Speedup");
    rule(46);
    for &d in graphs {
        let g = analog(d);
        let cycles = |stealing| {
            let cfg = GramerConfig {
                work_stealing: stealing,
                ..GramerConfig::default()
            };
            variant.with_app(d, |app| run_gramer(&g, app, cfg).cycles)
        };
        let without = cycles(false);
        let with = cycles(true);
        println!(
            "{:<10} {:>12} {:>12} {:>8.2}x",
            d.name(),
            without,
            with,
            without as f64 / with as f64
        );
    }
}
