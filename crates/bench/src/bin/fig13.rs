//! Figure 13: (a) performance while sweeping the number of pipeline slots
//! 1 → 16, and (b) the speedup from work stealing.
//!
//! The paper sees near-linear scaling up to 8 slots (except on tiny
//! Citeseer), diminishing returns 8 → 16 from memory-partition pressure,
//! and 1.32–1.90× from work stealing with Mico (the most skewed graph)
//! benefiting most.

use gramer::GramerConfig;
use gramer_bench::{
    rule, run_gramer, AnalogCache, AppVariant, PointOutput, PointRecord, Sweep, SweepArgs,
};
use gramer_graph::datasets::Dataset;

const SLOTS: [usize; 5] = [1, 2, 4, 8, 16];

fn graphs() -> &'static [Dataset] {
    if gramer_bench::quick_mode() {
        &[Dataset::Citeseer, Dataset::P2p, Dataset::Patents]
    } else {
        &Dataset::ALL
    }
}

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();
    let variant = AppVariant::Cf(5); // the paper sweeps 5-CF
    let cache = AnalogCache::new();

    let mut sweep = Sweep::new("fig13");
    for &d in graphs() {
        for slots in SLOTS {
            let cache = &cache;
            sweep.point(
                d.name(),
                &variant.name(d),
                &format!("slots-{slots}"),
                move || {
                    let cfg = GramerConfig {
                        slots_per_pu: slots,
                        ..GramerConfig::default()
                    };
                    variant
                        .with_app(d, |app| run_gramer(cache.get(d), app, cfg))
                        .map(PointOutput::from_report)
                },
            );
        }
        for (label, stealing) in [("steal-off", false), ("steal-on", true)] {
            let cache = &cache;
            sweep.point(d.name(), &variant.name(d), label, move || {
                let cfg = GramerConfig {
                    work_stealing: stealing,
                    ..GramerConfig::default()
                };
                variant
                    .with_app(d, |app| run_gramer(cache.get(d), app, cfg))
                    .map(PointOutput::from_report)
            });
        }
    }
    let result = sweep.execute(&args);

    println!("Figure 13(a) — performance vs pipeline slots (normalised to 1 slot, 5-CF)");
    println!("(paper: near-linear to 8 slots except Citeseer, flattening 8->16)\n");
    print!("{:<10}", "Graph");
    for slots in SLOTS {
        print!("{:>9}", format!("{slots} slots"));
    }
    println!();
    rule(55);
    for &d in graphs() {
        let cycles = |config: &str| {
            result
                .find(d.name(), &variant.name(d), config)
                .and_then(PointRecord::cycles)
        };
        let Some(base) = cycles("slots-1") else {
            continue;
        };
        print!("{:<10}", d.name());
        for slots in SLOTS {
            match cycles(&format!("slots-{slots}")) {
                Some(c) => print!("{:>8.2}x", base as f64 / c as f64),
                None => print!("{:>9}", "-"),
            }
        }
        println!();
    }

    println!("\nFigure 13(b) — work-stealing speedup (5-CF, 16 slots)");
    println!("(paper: 1.32-1.90x, skewed Mico benefits most)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "Graph", "w/o steal", "w/ steal", "Speedup"
    );
    rule(46);
    for &d in graphs() {
        let cycles = |config: &str| {
            result
                .find(d.name(), &variant.name(d), config)
                .and_then(PointRecord::cycles)
        };
        let (Some(without), Some(with)) = (cycles("steal-off"), cycles("steal-on")) else {
            continue;
        };
        println!(
            "{:<10} {:>12} {:>12} {:>8.2}x",
            d.name(),
            without,
            with,
            without as f64 / with as f64
        );
    }
    gramer_bench::finish(&result)
}
