//! Figure 11: (a) energy consumption and (b) total time including
//! preprocessing, both normalised to GRAMER.
//!
//! Energy methodology follows §VI-B: GRAMER uses modeled on-chip power ×
//! time; CPU baselines use TDP × time; DRAM energy excluded on both
//! sides. The paper reports 9.4–129.7× savings vs Fractal and
//! 5.79–678.3× vs RStream, and preprocessing overheads up to 55% of
//! execution on tiny graphs but < 3% on medium ones.

use gramer::GramerConfig;
use gramer_baselines::{FractalModel, RstreamModel, RstreamOutcome};
use gramer_bench::{analog, run_gramer, rule, AppVariant};
use gramer_graph::datasets::Dataset;
use gramer_memsim::EnergyModel;

fn main() {
    let variant = AppVariant::Cf(5); // the paper's Fig. 11(b) uses 5-CF
    let energy = EnergyModel::default();
    let fractal = FractalModel::default();
    let rstream = RstreamModel::default();

    println!("Figure 11 — energy and total time, normalised to GRAMER (5-CF)");
    println!("(paper: energy savings 9.4-129.7x vs Fractal, 5.79-678.3x vs RStream;");
    println!(" preprocessing <=55% of exec on tiny graphs, <3% on medium)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "Graph", "E(Fractal)x", "E(RStream)x", "T(Fractal)x", "T(RStream)x", "Preproc%"
    );
    rule(80);

    for d in Dataset::ALL {
        if matches!(d, Dataset::Astro | Dataset::Mico | Dataset::LiveJournal)
            && gramer_bench::quick_mode()
        {
            continue;
        }
        let g = analog(d);
        variant.with_app(d, |app| {
            let report = run_gramer(&g, app, GramerConfig::default());
            let profile = app.profile(&g);
            let gramer_e = energy.accel_power_w * report.wall_seconds();
            let fr_t = fractal.estimate_seconds(&profile);
            let fr_e = energy.cpu_energy(fr_t);
            let (rs_t, rs_e) = match rstream.estimate(&profile) {
                RstreamOutcome::Seconds(s) => (Some(s), Some(energy.cpu_energy(s))),
                _ => (None, None),
            };
            let total = report.total_seconds();
            let norm = |x: Option<f64>, base: f64| match x {
                Some(v) => format!("{:>11.2}x", v / base),
                None => format!("{:>12}", "N/A"),
            };
            println!(
                "{:<10} {} {} {} {} {:>11.2}%",
                d.name(),
                norm(Some(fr_e), gramer_e),
                norm(rs_e, gramer_e),
                norm(Some(fr_t), total),
                norm(rs_t, total),
                100.0 * report.preprocess_seconds / report.wall_seconds().max(1e-12)
            );
        });
    }
}
