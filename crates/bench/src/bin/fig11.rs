//! Figure 11: (a) energy consumption and (b) total time including
//! preprocessing, both normalised to GRAMER.
//!
//! Energy methodology follows §VI-B: GRAMER uses modeled on-chip power ×
//! time; CPU baselines use TDP × time; DRAM energy excluded on both
//! sides. The paper reports 9.4–129.7× savings vs Fractal and
//! 5.79–678.3× vs RStream, and preprocessing overheads up to 55% of
//! execution on tiny graphs but < 3% on medium ones.

use gramer::GramerConfig;
use gramer_baselines::{FractalModel, RstreamModel, RstreamOutcome};
use gramer_bench::{rule, run_gramer, AnalogCache, AppVariant, PointOutput, Sweep, SweepArgs};
use gramer_graph::datasets::Dataset;
use gramer_memsim::EnergyModel;

fn datasets() -> impl Iterator<Item = Dataset> {
    Dataset::ALL.into_iter().filter(|d| {
        !(matches!(d, Dataset::Astro | Dataset::Mico | Dataset::LiveJournal)
            && gramer_bench::quick_mode())
    })
}

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();
    let variant = AppVariant::Cf(5); // the paper's Fig. 11(b) uses 5-CF
    let cache = AnalogCache::new();

    let mut sweep = Sweep::new("fig11");
    for d in datasets() {
        let cache = &cache;
        sweep.point(d.name(), &variant.name(d), "default", move || {
            let energy = EnergyModel::default();
            let g = cache.get(d);
            variant.with_app(d, |app| {
                let report = run_gramer(g, app, GramerConfig::default())?;
                let profile = app.profile(g);
                let gramer_e = energy.accel_power_w * report.wall_seconds();
                let fr_t = FractalModel::default().estimate_seconds(&profile);
                let fr_e = energy.cpu_energy(fr_t);
                let total = report.total_seconds();
                let preproc = 100.0 * report.preprocess_seconds / report.wall_seconds().max(1e-12);
                let mut out = PointOutput::new()
                    .metric("fractal_energy_x", fr_e / gramer_e)
                    .metric("fractal_time_x", fr_t / total)
                    .metric("preprocess_pct", preproc);
                if let RstreamOutcome::Seconds(s) = RstreamModel::default().estimate(&profile) {
                    out = out
                        .metric("rstream_energy_x", energy.cpu_energy(s) / gramer_e)
                        .metric("rstream_time_x", s / total);
                }
                out.report = Some(report);
                Ok::<_, gramer::SimError>(out)
            })
        });
    }
    let result = sweep.execute(&args);

    println!("Figure 11 — energy and total time, normalised to GRAMER (5-CF)");
    println!("(paper: energy savings 9.4-129.7x vs Fractal, 5.79-678.3x vs RStream;");
    println!(" preprocessing <=55% of exec on tiny graphs, <3% on medium)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "Graph", "E(Fractal)x", "E(RStream)x", "T(Fractal)x", "T(RStream)x", "Preproc%"
    );
    rule(80);
    for d in datasets() {
        let Some(r) = result.find(d.name(), &variant.name(d), "default") else {
            continue;
        };
        let norm = |key: &str| match r.metric_f64(key) {
            Some(v) => format!("{v:>11.2}x"),
            None => format!("{:>12}", "N/A"),
        };
        println!(
            "{:<10} {} {} {} {} {:>11.2}%",
            d.name(),
            norm("fractal_energy_x"),
            norm("rstream_energy_x"),
            norm("fractal_time_x"),
            norm("rstream_time_x"),
            r.metric_f64("preprocess_pct").unwrap_or(0.0)
        );
    }
    gramer_bench::finish(&result)
}
