//! `perf` — the pinned end-to-end performance workload behind
//! `scripts/perf.sh`.
//!
//! Runs a fixed, seeded workload through the full GRAMER stack
//! (preprocess + simulate) and writes `results/BENCH_core.json` recording
//! the repo's simulator-throughput trajectory: wall seconds, simulator
//! steps per second, and peak RSS, keyed by git revision. Future PRs are
//! held to these numbers (see EXPERIMENTS.md, "Simulator performance
//! trajectory").
//!
//! The workload is deliberately *host-performance* sensitive and
//! *simulation-deterministic*: the graphs are seeded, the apps fixed, so
//! `cycles`, `steps` and every mining count must be byte-stable across
//! hosts, repeats and PRs (asserted here), while wall seconds measure
//! the simulator implementation itself. Each cell is run `--repeats`
//! times (default 3) and the document records the median and best so a
//! single noisy run cannot bend the trajectory.
//!
//! ```text
//! cargo run --release -p gramer-bench --bin perf [-- --json PATH] [--quick] [--repeats N]
//!                                                [--check] [--baseline PATH] [--threshold PCT]
//! ```
//!
//! `--check` is the perf regression gate: instead of (over)writing the
//! JSON document it measures a fresh one and compares it against the
//! committed baseline (`--baseline`, default `results/BENCH_core.json`).
//! Simulated quantities must be identical; the total median throughput
//! may be at most `--threshold` percent (default 10) below the
//! baseline's. Exits non-zero on any violation.

use gramer::{
    preprocess, EpochMode, GramerConfig, MemoMode, RunReport, Simulator, MAX_SIM_THREADS,
};
use gramer_bench::perf;
use gramer_graph::{generate, CsrGraph};
use gramer_mining::apps::{CliqueFinding, MotifCounting};
use gramer_mining::EcmApp;
use std::process::ExitCode;
use std::time::Instant;

/// One pinned workload cell.
struct Cell {
    name: &'static str,
    graph: CsrGraph,
    app: Box<dyn DynPerfApp>,
    /// Engine the cell is pinned to (overridable with `--epoch`): the
    /// headline cells run the epoch-batched default, and a smaller
    /// reference cell keeps the `--epoch=off` interleaving on the
    /// trajectory so the engines' relative cost stays measured.
    epoch: EpochMode,
    /// Memo-table mode the cell is pinned to (overridable with
    /// `--memo`). The memo-on cell and its same-graph `--memo off`
    /// control measure the pair-memo's wall-clock and simulated-cycle
    /// win side by side.
    memo: MemoMode,
}

trait DynPerfApp {
    fn simulate(&self, pre: &gramer::Preprocessed, cfg: GramerConfig) -> RunReport;
}

impl<A: EcmApp> DynPerfApp for A {
    fn simulate(&self, pre: &gramer::Preprocessed, cfg: GramerConfig) -> RunReport {
        Simulator::new(pre, cfg)
            .expect("pinned config is valid")
            .run(self)
            .expect("pinned workload must simulate")
    }
}

/// The pinned workload: a seeded Barabási–Albert graph under 4-clique
/// finding (hub-heavy closure checks) and a seeded R-MAT graph under
/// 3-motif counting (pattern interning + skewed traffic). Sizes are
/// chosen so one pass takes seconds, not minutes, on a laptop core.
fn cells(quick: bool) -> Vec<Cell> {
    let scale = if quick { 4 } else { 1 };
    let rmat_params = generate::RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };
    vec![
        Cell {
            name: "BA(3000,4)x4-CF",
            graph: generate::barabasi_albert(3000 / scale, 4, 71),
            app: Box::new(CliqueFinding::new(4).expect("valid k")),
            epoch: EpochMode::On,
            memo: MemoMode::Off,
        },
        Cell {
            name: "RMAT(13)x3-MC",
            graph: generate::rmat(13 - (quick as u32) * 2, 40_000 / scale, rmat_params, 7),
            app: Box::new(MotifCounting::new(3).expect("valid k")),
            epoch: EpochMode::On,
            memo: MemoMode::Off,
        },
        // The same R-MAT x 3-MC workload with the pair memo on: together
        // with the `--memo off` control above, this keeps the memo's
        // wall-clock and simulated-cycle win on the measured trajectory.
        Cell {
            name: "RMAT(13)x3-MC@memo",
            graph: generate::rmat(13 - (quick as u32) * 2, 40_000 / scale, rmat_params, 7),
            app: Box::new(MotifCounting::new(3).expect("valid k")),
            epoch: EpochMode::On,
            memo: MemoMode::On {
                bytes: gramer_mining::DEFAULT_MEMO_BYTES,
            },
        },
        // Smaller reference cell pinned to the non-epoch interleaving:
        // keeps `--epoch=off` on the measured trajectory without letting
        // the slower engine dominate the blended total.
        Cell {
            name: "RMAT(11)x3-MC@epoch-off",
            graph: generate::rmat(11 - (quick as u32) * 2, 10_000 / scale, rmat_params, 7),
            app: Box::new(MotifCounting::new(3).expect("valid k")),
            epoch: EpochMode::Off,
            memo: MemoMode::Off,
        },
    ]
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// The current git revision, from `GRAMER_GIT_REV` (set by
/// `scripts/perf.sh`) or `git rev-parse`, else `"unknown"`.
fn git_rev() -> String {
    if let Ok(rev) = std::env::var("GRAMER_GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = std::path::PathBuf::from("results/BENCH_core.json");
    let mut quick = false;
    let mut repeats = 3usize;
    let mut check = false;
    let mut baseline_path = std::path::PathBuf::from("results/BENCH_core.json");
    let mut threshold = 10.0f64;
    let mut epoch_override: Option<EpochMode> = None;
    let mut memo_override: Option<MemoMode> = None;
    let mut sim_threads = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = p.into(),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--quick" => quick = true,
            "--repeats" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => repeats = n,
                _ => {
                    eprintln!("--repeats requires a count >= 1");
                    return ExitCode::from(2);
                }
            },
            "--check" => check = true,
            "--baseline" => match it.next() {
                Some(p) => baseline_path = p.into(),
                None => {
                    eprintln!("--baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--threshold" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(p) if p.is_finite() && p >= 0.0 => threshold = p,
                _ => {
                    eprintln!("--threshold requires a non-negative percentage");
                    return ExitCode::from(2);
                }
            },
            "--epoch" => match it.next().and_then(|v| v.parse::<EpochMode>().ok()) {
                Some(mode) => epoch_override = Some(mode),
                None => {
                    eprintln!("--epoch requires \"on\" or \"off\"");
                    return ExitCode::from(2);
                }
            },
            "--memo" => match it.next().and_then(|v| v.parse::<MemoMode>().ok()) {
                Some(mode) => memo_override = Some(mode),
                None => {
                    eprintln!("--memo requires \"on\", \"off\" or a byte budget");
                    return ExitCode::from(2);
                }
            },
            "--sim-threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if (1..=MAX_SIM_THREADS).contains(&n) => sim_threads = n,
                _ => {
                    eprintln!("--sim-threads requires a count in 1..={MAX_SIM_THREADS}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "perf — pinned simulator-throughput workload\n\
                     usage: perf [--json PATH] [--quick] [--repeats N]\n\
                     \x20           [--check] [--baseline PATH] [--threshold PCT]\n\
                     \x20           [--epoch on|off] [--memo on|off|BYTES] [--sim-threads N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let mut workloads: Vec<perf::WorkloadRuns> = Vec::new();
    println!(
        "{:<24} {:>10} {:>10} {:>14} {:>14} {:>12}",
        "workload", "median s", "best s", "steps", "steps/sec med", "sim cycles"
    );
    for cell in cells(quick) {
        // Each cell is measured serially regardless of --sim-threads (CI
        // has one CPU; the committed number is the single-thread engine
        // win) — the knob is recorded in the document and handed to the
        // config so its validation path stays on the trajectory.
        let cfg = GramerConfig {
            epoch: epoch_override.unwrap_or(cell.epoch),
            memo: memo_override.unwrap_or(cell.memo),
            sim_threads,
            ..GramerConfig::default()
        };
        let mut walls = Vec::with_capacity(repeats);
        let mut first: Option<RunReport> = None;
        for _ in 0..repeats {
            let t0 = Instant::now();
            let pre = preprocess(&cell.graph, &cfg).expect("pinned config preprocesses");
            let report = cell.app.simulate(&pre, cfg.clone());
            walls.push(t0.elapsed().as_secs_f64());
            match &first {
                None => first = Some(report),
                Some(f) => {
                    // Every simulated quantity must be byte-stable
                    // across repeats — wall time is the only thing a
                    // repeat is allowed to change.
                    assert_eq!(f.steps, report.steps, "{}: steps drifted", cell.name);
                    assert_eq!(f.cycles, report.cycles, "{}: cycles drifted", cell.name);
                    assert_eq!(f.mem, report.mem, "{}: memory stats drifted", cell.name);
                    assert_eq!(f.steals, report.steals, "{}: steals drifted", cell.name);
                    assert_eq!(f.memo, report.memo, "{}: memo stats drifted", cell.name);
                    assert_eq!(
                        f.pu_steps, report.pu_steps,
                        "{}: pu_steps drifted",
                        cell.name
                    );
                    assert_eq!(
                        f.result.embeddings, report.result.embeddings,
                        "{}: embeddings drifted",
                        cell.name
                    );
                    assert_eq!(
                        f.result.counts.sorted(),
                        report.result.counts.sorted(),
                        "{}: pattern counts drifted",
                        cell.name
                    );
                }
            }
        }
        let report = first.expect("repeats >= 1");
        let runs = perf::WorkloadRuns {
            name: cell.name,
            epoch: match cfg.epoch {
                EpochMode::On => "on",
                EpochMode::Off => "off",
            },
            sim_threads: sim_threads as u64,
            memo: match cfg.memo {
                MemoMode::Off => "off".to_string(),
                MemoMode::On { bytes } => bytes.to_string(),
            },
            walls,
            report,
        };
        println!(
            "{:<24} {:>10.3} {:>10.3} {:>14} {:>14.0} {:>12}",
            runs.name,
            runs.wall_median(),
            runs.wall_best(),
            runs.report.steps,
            runs.report.steps as f64 / runs.wall_median().max(1e-9),
            runs.report.cycles
        );
        workloads.push(runs);
    }
    let total_steps: u64 = workloads.iter().map(|w| w.report.steps).sum();
    let total_median: f64 = workloads.iter().map(perf::WorkloadRuns::wall_median).sum();
    let total_best: f64 = workloads.iter().map(perf::WorkloadRuns::wall_best).sum();
    let rss = peak_rss_kb();
    println!(
        "{:<24} {:>10.3} {:>10.3} {:>14} {:>14.0}   peak RSS {} kB",
        "TOTAL",
        total_median,
        total_best,
        total_steps,
        total_steps as f64 / total_median.max(1e-9),
        rss
    );

    let doc = perf::perf_document(&git_rev(), quick, repeats, &workloads, rss);

    if check {
        // Regression gate: compare against the committed baseline
        // instead of overwriting it.
        let baseline_text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let (fresh, baseline) = match (
            gramer::json::JsonValue::parse(doc.trim()),
            gramer::json::JsonValue::parse(baseline_text.trim()),
        ) {
            (Ok(f), Ok(b)) => (f, b),
            (f, b) => {
                eprintln!("cannot parse perf documents: fresh {f:?} baseline {b:?}");
                return ExitCode::FAILURE;
            }
        };
        let verdict = perf::check_against_baseline(&fresh, &baseline, threshold);
        for line in &verdict.info {
            println!("{line}");
        }
        return if verdict.ok() {
            println!(
                "perf check PASSED against {} (threshold -{threshold}%)",
                baseline_path.display()
            );
            ExitCode::SUCCESS
        } else {
            for v in &verdict.violations {
                eprintln!("perf check violation: {v}");
            }
            eprintln!("perf check FAILED against {}", baseline_path.display());
            ExitCode::FAILURE
        };
    }

    if let Some(dir) = json_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&json_path, doc) {
        Ok(()) => {
            println!("wrote {}", json_path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", json_path.display());
            ExitCode::FAILURE
        }
    }
}
