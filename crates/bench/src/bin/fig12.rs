//! Figure 12: effectiveness of the locality-aware memory hierarchy on
//! P2P, with 10% of the graph data on-chip.
//!
//! Three configurations, as in the paper: a uniform 4-way LRU cache of
//! the same total capacity, the hierarchy with an LRU low-priority memory
//! ("Static + LRU"), and the full LAMH (locality-preserved replacement).
//! The paper reports Static+LRU improving hit ratios by 13-37pp (vertex)
//! / 8-25pp (edge) over uniform LRU, LAMH adding 1-6pp more, and
//! speedups of 1.6-2.95x and a further 1.06-1.39x.

use gramer::{GramerConfig, MemoryBudget, MemoryMode};
use gramer_bench::{analog, run_gramer, rule, AppVariant, DynApp};
use gramer_graph::datasets::Dataset;
use gramer_graph::generate;
use gramer_mining::apps::CliqueFinding;

fn main() {
    let d = Dataset::P2p;
    let g = analog(d);
    // The paper's Fig. 12 x-axis: 3/4/5-CF, 3/4-MC, FSM-2K, FSM-3K. 4-MC
    // at full P2P scale exceeds a software simulation budget; we keep the
    // remaining six variants.
    let variants = [
        AppVariant::Cf(3),
        AppVariant::Cf(4),
        AppVariant::Cf(5),
        AppVariant::Mc(3),
        AppVariant::Fsm,
    ];

    println!("Figure 12 — LAMH vs baselines on {} (10% of data on-chip)", d.name());
    println!("(paper: Static+LRU > Uniform LRU by 13-37pp vertex hit; LAMH adds 1-6pp;");
    println!(" performance 1.6-2.95x then a further 1.06-1.39x)\n");
    println!(
        "{:<10} {:<12} {:>9} {:>9} {:>12} {:>10}",
        "App", "Hierarchy", "V-hit%", "E-hit%", "Cycles", "Speedup"
    );
    rule(68);

    for variant in variants {
        let mut uniform_cycles = None;
        for (label, mode) in [
            ("Uniform LRU", MemoryMode::UniformLru),
            ("Static+LRU", MemoryMode::StaticLru),
            ("LAMH", MemoryMode::Lamh),
        ] {
            let cfg = GramerConfig {
                budget: MemoryBudget::Fraction(0.10),
                memory_mode: mode,
                ..GramerConfig::default()
            };
            variant.with_app(d, |app| {
                let r = run_gramer(&g, app, cfg.clone());
                let base = *uniform_cycles.get_or_insert(r.cycles);
                println!(
                    "{:<10} {:<12} {:>8.2}% {:>8.2}% {:>12} {:>9.2}x",
                    variant.name(d),
                    label,
                    100.0 * r.mem.vertex.on_chip_ratio(),
                    100.0 * r.mem.edge.on_chip_ratio(),
                    r.cycles,
                    base as f64 / r.cycles as f64
                );
            });
        }
        rule(68);
    }

    // At simulator scale the P2P analog's traffic is far less concentrated
    // than the paper's full-size, deep-iteration runs (see Fig. 5 and
    // EXPERIMENTS.md), which advantages the adaptive uniform cache. The
    // heavy-skew regime below is where the extension-locality premise
    // holds at this scale — and where the hierarchy's ordering emerges.
    println!("\nSupplementary: heavy-skew regime (R-MAT a=0.65, gini≈0.84, 4-CF)");
    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>10}",
        "Hierarchy", "V-hit%", "E-hit%", "Cycles", "Speedup"
    );
    rule(56);
    let heavy = generate::rmat(
        11,
        8000,
        generate::RmatParams {
            a: 0.65,
            b: 0.15,
            c: 0.15,
            d: 0.05,
        },
        5,
    );
    let app = CliqueFinding::new(4).expect("valid");
    let mut base = None;
    for (label, mode) in [
        ("Uniform LRU", MemoryMode::UniformLru),
        ("Static+LRU", MemoryMode::StaticLru),
        ("LAMH", MemoryMode::Lamh),
    ] {
        let cfg = GramerConfig {
            budget: MemoryBudget::Fraction(0.10),
            memory_mode: mode,
            ..GramerConfig::default()
        };
        let r = (&app as &dyn DynApp).simulate(&gramer::preprocess(&heavy, &cfg), cfg);
        let b = *base.get_or_insert(r.cycles);
        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>12} {:>9.2}x",
            label,
            100.0 * r.mem.vertex.on_chip_ratio(),
            100.0 * r.mem.edge.on_chip_ratio(),
            r.cycles,
            b as f64 / r.cycles as f64
        );
    }
}
