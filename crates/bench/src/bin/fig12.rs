//! Figure 12: effectiveness of the locality-aware memory hierarchy on
//! P2P, with 10% of the graph data on-chip.
//!
//! Three configurations, as in the paper: a uniform 4-way LRU cache of
//! the same total capacity, the hierarchy with an LRU low-priority memory
//! ("Static + LRU"), and the full LAMH (locality-preserved replacement).
//! The paper reports Static+LRU improving hit ratios by 13-37pp (vertex)
//! / 8-25pp (edge) over uniform LRU, LAMH adding 1-6pp more, and
//! speedups of 1.6-2.95x and a further 1.06-1.39x.

use gramer::{GramerConfig, MemoryBudget, MemoryMode};
use gramer_bench::{
    rule, run_gramer, AnalogCache, AppVariant, PointOutput, PointRecord, Sweep, SweepArgs,
};
use gramer_graph::datasets::Dataset;
use gramer_graph::{generate, CsrGraph};
use gramer_mining::apps::CliqueFinding;
use std::sync::OnceLock;

const MODES: [(&str, MemoryMode); 3] = [
    ("Uniform LRU", MemoryMode::UniformLru),
    ("Static+LRU", MemoryMode::StaticLru),
    ("LAMH", MemoryMode::Lamh),
];

fn config(mode: MemoryMode) -> GramerConfig {
    GramerConfig {
        budget: MemoryBudget::Fraction(0.10),
        memory_mode: mode,
        ..GramerConfig::default()
    }
}

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();
    let d = Dataset::P2p;
    // The paper's Fig. 12 x-axis: 3/4/5-CF, 3/4-MC, FSM-2K, FSM-3K. 4-MC
    // at full P2P scale exceeds a software simulation budget; we keep the
    // remaining six variants.
    let variants = [
        AppVariant::Cf(3),
        AppVariant::Cf(4),
        AppVariant::Cf(5),
        AppVariant::Mc(3),
        AppVariant::Fsm,
    ];

    let cache = AnalogCache::new();
    let heavy: OnceLock<CsrGraph> = OnceLock::new();
    let heavy_graph = || {
        heavy.get_or_init(|| {
            // Heavy-skew regime where the extension-locality premise holds
            // at simulator scale (gini ≈ 0.84).
            generate::rmat(
                11,
                8000,
                generate::RmatParams {
                    a: 0.65,
                    b: 0.15,
                    c: 0.15,
                    d: 0.05,
                },
                5,
            )
        })
    };

    let mut sweep = Sweep::new("fig12");
    for variant in variants {
        for (label, mode) in MODES {
            let cache = &cache;
            sweep.point(d.name(), &variant.name(d), label, move || {
                variant
                    .with_app(d, |app| run_gramer(cache.get(d), app, config(mode)))
                    .map(PointOutput::from_report)
            });
        }
    }
    for (label, mode) in MODES {
        let heavy_graph = &heavy_graph;
        sweep.point("rmat-skew", "4-CF", label, move || {
            let app = CliqueFinding::new(4).expect("valid");
            let cfg = config(mode);
            let pre = gramer::preprocess(heavy_graph(), &cfg)?;
            let report = gramer::Simulator::new(&pre, cfg)?.run(&app)?;
            Ok::<_, gramer::SimError>(PointOutput::from_report(report))
        });
    }
    let result = sweep.execute(&args);

    println!(
        "Figure 12 — LAMH vs baselines on {} (10% of data on-chip)",
        d.name()
    );
    println!("(paper: Static+LRU > Uniform LRU by 13-37pp vertex hit; LAMH adds 1-6pp;");
    println!(" performance 1.6-2.95x then a further 1.06-1.39x)\n");
    println!(
        "{:<10} {:<12} {:>9} {:>9} {:>12} {:>10}",
        "App", "Hierarchy", "V-hit%", "E-hit%", "Cycles", "Speedup"
    );
    rule(68);
    for variant in variants {
        print_modes(&result, d.name(), &variant.name(d), true);
    }

    println!("\nSupplementary: heavy-skew regime (R-MAT a=0.65, gini≈0.84, 4-CF)");
    println!(
        "{:<10} {:<12} {:>9} {:>9} {:>12} {:>10}",
        "App", "Hierarchy", "V-hit%", "E-hit%", "Cycles", "Speedup"
    );
    rule(68);
    print_modes(&result, "rmat-skew", "4-CF", false);
    gramer_bench::finish(&result)
}

/// Prints one row per memory mode, with speedups against the uniform-LRU
/// baseline of the same `(dataset, app)` pair.
fn print_modes(result: &gramer_bench::SweepResult, dataset: &str, app: &str, separator: bool) {
    let baseline = result
        .find(dataset, app, MODES[0].0)
        .and_then(PointRecord::cycles);
    let mut printed = false;
    for (label, _) in MODES {
        let Some(r) = result
            .find(dataset, app, label)
            .and_then(PointRecord::report)
        else {
            continue;
        };
        printed = true;
        let speedup = baseline.map_or_else(
            || format!("{:>10}", "-"),
            |b| format!("{:>9.2}x", b as f64 / r.cycles as f64),
        );
        println!(
            "{:<10} {:<12} {:>8.2}% {:>8.2}% {:>12} {}",
            app,
            label,
            100.0 * r.mem.vertex.on_chip_ratio(),
            100.0 * r.mem.edge.on_chip_ratio(),
            r.cycles,
            speedup
        );
    }
    if separator && printed {
        rule(68);
    }
}
