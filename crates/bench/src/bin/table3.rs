//! Table III: running time of GRAMER against Fractal and RStream.
//!
//! GRAMER's time is `simulated cycles / 200 MHz`; the baselines come from
//! the calibrated cost models in `gramer-baselines` driven by a measured
//! CPU profile of the same workload (real enumeration, modeled caches).
//! Datasets are scaled power-law analogs (divisors printed below), so
//! absolute seconds differ from the paper — the comparison targets are
//! the *ratios*: 1.8–24.9× vs Fractal, 1.11–129.95× vs RStream, with
//! RStream collapsing (or running out of disk) when intermediates
//! explode.
//!
//! Heavy cells can exceed a software simulator's budget; set
//! `GRAMER_QUICK=1` to shrink the graphs 4×.

use gramer::GramerConfig;
use gramer_baselines::{FractalModel, RstreamModel, RstreamOutcome};
use gramer_bench::{analog, divisor, fmt_secs, run_gramer, rule, AppVariant, CsvWriter};
use gramer_graph::datasets::Dataset;

fn main() {
    let mut csv = CsvWriter::new(
        "table3.csv",
        &[
            "app",
            "graph",
            "gramer_seconds",
            "fractal_seconds",
            "rstream",
            "fractal_over_gramer",
            "rstream_over_gramer",
        ],
    );
    println!("Table III — running time (seconds), scaled analogs");
    println!("(paper ratios: Fractal/GRAMER 1.8-24.9x, RStream/GRAMER 1.11-129.95x)\n");
    println!(
        "{:<10} {:<10} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "App", "Graph", "GRAMER", "Fractal", "RStream", "Fr/Gr", "RS/Gr"
    );
    rule(74);

    let fractal = FractalModel::default();
    let rstream = RstreamModel::default();

    for variant in AppVariant::TABLE3 {
        for d in Dataset::ALL {
            // The paper itself omits the heaviest cells ('-'); we skip the
            // combinations whose *scaled* analogs still explode.
            if skip(variant, d) {
                continue;
            }
            let g = analog(d);
            variant.with_app(d, |app| {
                let report = run_gramer(&g, app, GramerConfig::default());
                let profile = app.profile(&g);
                let fr = fractal.estimate_seconds(&profile);
                let rs = rstream.estimate(&profile);
                let wall = report.wall_seconds();
                let rs_ratio = match rs {
                    RstreamOutcome::Seconds(s) => format!("{:>8.2}x", s / wall),
                    _ => format!("{:>9}", rs.to_string()),
                };
                println!(
                    "{:<10} {:<10} {:>10} {:>10} {:>10} {:>7.2}x {}",
                    variant.name(d),
                    d.name(),
                    fmt_secs(wall),
                    fmt_secs(fr),
                    rs.to_string(),
                    fr / wall,
                    rs_ratio
                );
                csv.row([
                    variant.name(d),
                    d.name().to_string(),
                    format!("{wall:.6}"),
                    format!("{fr:.6}"),
                    rs.to_string(),
                    format!("{:.3}", fr / wall),
                    rs.seconds()
                        .map(|s| format!("{:.3}", s / wall))
                        .unwrap_or_else(|| rs.to_string()),
                ]);
            });
        }
        rule(74);
    }

    println!(
        "\nscale divisors: {:?}",
        Dataset::ALL
            .iter()
            .map(|&d| (d.name(), divisor(d)))
            .collect::<Vec<_>>()
    );
    csv.finish();
}

/// Cells whose scaled analogs still exceed a software-simulation budget.
/// The paper's own table has '-' (not finished within an hour) and 'N/A'
/// cells for the same structural reason.
fn skip(variant: AppVariant, d: Dataset) -> bool {
    let heavy_graph = matches!(d, Dataset::Astro | Dataset::Mico | Dataset::LiveJournal);
    match variant {
        AppVariant::Cf(5) => heavy_graph && gramer_bench::quick_mode(),
        AppVariant::Mc(4) => heavy_graph,
        _ => false,
    }
}
