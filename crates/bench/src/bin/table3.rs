//! Table III: running time of GRAMER against Fractal and RStream.
//!
//! GRAMER's time is `simulated cycles / 200 MHz`; the baselines come from
//! the calibrated cost models in `gramer-baselines` driven by a measured
//! CPU profile of the same workload (real enumeration, modeled caches).
//! Datasets are scaled power-law analogs (divisors printed below), so
//! absolute seconds differ from the paper — the comparison targets are
//! the *ratios*: 1.8–24.9× vs Fractal, 1.11–129.95× vs RStream, with
//! RStream collapsing (or running out of disk) when intermediates
//! explode.
//!
//! Heavy cells can exceed a software simulator's budget; set
//! `GRAMER_QUICK=1` to shrink the graphs 4×.

use gramer::GramerConfig;
use gramer_baselines::{FractalModel, RstreamModel, RstreamOutcome};
use gramer_bench::{
    divisor, fmt_secs, rule, run_gramer, AnalogCache, AppVariant, PointOutput, Sweep, SweepArgs,
};
use gramer_graph::datasets::Dataset;

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();
    let cache = AnalogCache::new();

    let mut sweep = Sweep::new("table3");
    for variant in AppVariant::TABLE3 {
        for d in Dataset::ALL {
            // The paper itself omits the heaviest cells ('-'); we skip the
            // combinations whose *scaled* analogs still explode.
            if skip(variant, d) {
                continue;
            }
            let cache = &cache;
            sweep.point(d.name(), &variant.name(d), "vs-baselines", move || {
                let g = cache.get(d);
                variant.with_app(d, |app| {
                    let report = run_gramer(g, app, GramerConfig::default())?;
                    let profile = app.profile(g);
                    let fr = FractalModel::default().estimate_seconds(&profile);
                    let rs = RstreamModel::default().estimate(&profile);
                    let wall = report.wall_seconds();
                    let mut out = PointOutput::new()
                        .metric("gramer_seconds", wall)
                        .metric("fractal_seconds", fr)
                        .metric("fractal_over_gramer", fr / wall)
                        .metric("rstream", rs.to_string());
                    if let RstreamOutcome::Seconds(s) = rs {
                        out = out.metric("rstream_over_gramer", s / wall);
                    }
                    out.report = Some(report);
                    Ok::<_, gramer::SimError>(out)
                })
            });
        }
    }
    let result = sweep.execute(&args);

    println!("Table III — running time (seconds), scaled analogs");
    println!("(paper ratios: Fractal/GRAMER 1.8-24.9x, RStream/GRAMER 1.11-129.95x)\n");
    println!(
        "{:<10} {:<10} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "App", "Graph", "GRAMER", "Fractal", "RStream", "Fr/Gr", "RS/Gr"
    );
    rule(74);
    for variant in AppVariant::TABLE3 {
        let mut printed = false;
        for d in Dataset::ALL {
            let Some(r) = result.find(d.name(), &variant.name(d), "vs-baselines") else {
                continue;
            };
            printed = true;
            let f = |key: &str| r.metric_f64(key).unwrap_or(0.0);
            let rs_text = r
                .metric("rstream")
                .and_then(gramer::json::JsonValue::as_str)
                .unwrap_or("-");
            let rs_ratio = match r.metric_f64("rstream_over_gramer") {
                Some(x) => format!("{x:>8.2}x"),
                None => format!("{rs_text:>9}"),
            };
            println!(
                "{:<10} {:<10} {:>10} {:>10} {:>10} {:>7.2}x {}",
                variant.name(d),
                d.name(),
                fmt_secs(f("gramer_seconds")),
                fmt_secs(f("fractal_seconds")),
                rs_text,
                f("fractal_over_gramer"),
                rs_ratio
            );
        }
        if printed {
            rule(74);
        }
    }

    println!(
        "\nscale divisors: {:?}",
        Dataset::ALL
            .iter()
            .map(|&d| (d.name(), divisor(d)))
            .collect::<Vec<_>>()
    );
    gramer_bench::finish(&result)
}

/// Cells whose scaled analogs still exceed a software-simulation budget.
/// The paper's own table has '-' (not finished within an hour) and 'N/A'
/// cells for the same structural reason.
fn skip(variant: AppVariant, d: Dataset) -> bool {
    let heavy_graph = matches!(d, Dataset::Astro | Dataset::Mico | Dataset::LiveJournal);
    match variant {
        AppVariant::Cf(5) => heavy_graph && gramer_bench::quick_mode(),
        AppVariant::Mc(4) => heavy_graph,
        _ => false,
    }
}
