//! Figure 5: extension locality — the fraction of memory accesses landing
//! on the top-5% vertices / edges as the embedding size grows (MC).
//!
//! The paper traces all memory requests per iteration on Citeseer, P2P,
//! Astro and Mico: the top-5% vertex share starts near 30% in iteration 1
//! and reaches 94.57% (Mico) by iteration 4; edges start at 5% (each edge
//! touched once for 2-vertex embeddings) and climb to ~88%.

use gramer::json::JsonValue;
use gramer_bench::{quick_mode, rule, AnalogCache, PointOutput, Sweep, SweepArgs};
use gramer_graph::datasets::Dataset;
use gramer_graph::VertexId;
use gramer_memsim::trace::IterationTrace;
use gramer_mining::apps::MotifCounting;
use gramer_mining::{AccessObserver, DfsEnumerator};

/// Traces accesses into one counter pair per iteration (the iteration of
/// an access = the size of the embedding being extended).
struct PerIteration {
    traces: Vec<IterationTrace>,
}

impl PerIteration {
    fn new(max: usize, vertices: usize, slots: usize) -> Self {
        PerIteration {
            traces: (0..=max)
                .map(|_| IterationTrace::new(vertices, slots))
                .collect(),
        }
    }
}

impl AccessObserver for PerIteration {
    fn vertex_access(&mut self, v: VertexId, size: usize) {
        self.traces[size].vertex.record(v as usize);
    }

    fn edge_access(&mut self, slot: usize, _src: u32, size: usize) {
        self.traces[size].edge.record(slot);
    }
}

/// Per-dataset iteration cap: the paper excludes iterations beyond 4 and
/// the largest graphs as too expensive to trace; we do the same (and cap
/// Astro/Mico at 3 in quick mode).
fn iteration_cap(d: Dataset) -> usize {
    if quick_mode() && !matches!(d, Dataset::Citeseer | Dataset::P2p) {
        3
    } else {
        4
    }
}

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();
    let cache = AnalogCache::new();

    let mut sweep = Sweep::new("fig5");
    for d in Dataset::TRACEABLE {
        let cache = &cache;
        sweep.point(d.name(), "MC", "trace", move || {
            let g = cache.get(d);
            let cap = iteration_cap(d);
            let mut obs = PerIteration::new(cap, g.num_vertices(), g.adjacency_len());
            let app = MotifCounting::new(cap).expect("valid size");
            DfsEnumerator::new(g).run_with_observer(&app, &mut obs);
            let iters = JsonValue::array((1..cap).filter_map(|iter| {
                let t = &obs.traces[iter];
                if t.vertex.total() == 0 {
                    return None;
                }
                Some(JsonValue::object([
                    ("iter", JsonValue::from(iter)),
                    ("vertex_top5", JsonValue::from(t.vertex.top_share(0.05))),
                    ("edge_top5", JsonValue::from(t.edge.top_share(0.05))),
                ]))
            }));
            PointOutput::new().metric("iterations", iters)
        });
    }
    let result = sweep.execute(&args);

    println!("Figure 5 — share of accesses to the top-5% data per MC iteration");
    println!("(paper: vertices 29.9% -> 94.6%, edges 5% -> 87.8% as iterations deepen)\n");
    println!(
        "{:<10} {:>5} {:>16} {:>16}",
        "Graph", "iter", "top5% vertices", "top5% edges"
    );
    rule(52);
    for d in Dataset::TRACEABLE {
        let Some(r) = result.find(d.name(), "MC", "trace") else {
            continue;
        };
        let iters = r
            .metric("iterations")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[]);
        for row in iters {
            let f = |key: &str| row.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
            println!(
                "{:<10} {:>5} {:>15.2}% {:>15.2}%",
                d.name(),
                f("iter") as usize,
                100.0 * f("vertex_top5"),
                100.0 * f("edge_top5")
            );
        }
        rule(52);
    }
    gramer_bench::finish(&result)
}
