//! Ablations of GRAMER design choices called out in DESIGN.md, measured
//! in simulated cycles / state bytes rather than host time:
//!
//! 1. vertex/edge memory isolation (the paper's §IV-A design point) vs a
//!    shared-port configuration;
//! 2. adaptive round-robin dispatch vs static pre-assignment (§V-C);
//! 3. compacted vs full ancestor records (Fig. 10's storage saving);
//! 4. next-line edge prefetching at constrained capacity;
//! 5. the locality-preserved policy vs plain LRU in the low-priority
//!    memory at constrained capacity;
//! 6. the recurrent-pattern pair memo vs the reference probe path
//!    (DESIGN.md §10);
//! 7. λ autotuning on top of the locality-preserved policy at
//!    constrained capacity;
//! 8. runtime scratchpad re-pinning vs the static ON1 pin set at
//!    constrained capacity.

use gramer::pipeline::{clock_rate_mhz, AncestorMode};
use gramer::{GramerConfig, MemoMode, MemoryBudget, MemoryMode};
use gramer_bench::{
    rule, run_gramer, AnalogCache, AppVariant, PointOutput, PointRecord, Sweep, SweepArgs,
};
use gramer_graph::datasets::Dataset;
use gramer_memsim::LatencyConfig;
use gramer_mining::apps::CliqueFinding;

fn constrained(budget: bool) -> GramerConfig {
    if budget {
        GramerConfig {
            budget: MemoryBudget::Fraction(0.10),
            ..GramerConfig::default()
        }
    } else {
        GramerConfig::default()
    }
}

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();
    let d = Dataset::P2p;
    let variant = AppVariant::Cf(4);
    let cache = AnalogCache::new();

    // Every simulated study is one point; the "default" run doubles as
    // the baseline of studies 1 and 2.
    let configs: [(&str, fn() -> GramerConfig); 11] = [
        ("default", || constrained(false)),
        ("shared-port", || GramerConfig {
            latency: LatencyConfig {
                ports_per_bank: 1,
                ..LatencyConfig::default()
            },
            ..GramerConfig::default()
        }),
        ("static-dispatch", || GramerConfig {
            static_dispatch: true,
            ..GramerConfig::default()
        }),
        ("prefetch-on", || GramerConfig {
            next_line_prefetch: true,
            ..constrained(true)
        }),
        ("prefetch-off", || GramerConfig {
            next_line_prefetch: false,
            ..constrained(true)
        }),
        ("lamh", || GramerConfig {
            memory_mode: MemoryMode::Lamh,
            ..constrained(true)
        }),
        ("static-lru", || GramerConfig {
            memory_mode: MemoryMode::StaticLru,
            ..constrained(true)
        }),
        ("memo-on", || GramerConfig {
            memo: MemoMode::On {
                bytes: gramer_mining::DEFAULT_MEMO_BYTES,
            },
            ..GramerConfig::default()
        }),
        ("adaptive-lambda", || GramerConfig {
            memory_mode: MemoryMode::Lamh,
            adaptive_lambda: true,
            ..constrained(true)
        }),
        ("repin-off", || constrained(true)),
        ("repin-on", || GramerConfig {
            repin: true,
            ..constrained(true)
        }),
    ];

    let mut sweep = Sweep::new("ablation");
    for (label, cfg) in configs {
        let cache = &cache;
        sweep.point(d.name(), &variant.name(d), label, move || {
            let app = match variant {
                AppVariant::Cf(k) => CliqueFinding::new(k).expect("valid k"),
                _ => unreachable!("ablation uses CF"),
            };
            run_gramer(cache.get(d), &app, cfg()).map(PointOutput::from_report)
        });
    }
    sweep.point(d.name(), &variant.name(d), "compaction", || {
        let cfg = GramerConfig::default();
        // Ancestor-record footprint: all vertices of a max embedding vs
        // the compacted (index, vertex) pair (Fig. 10).
        let full_bytes = cfg.slots_per_pu * cfg.ancestor_depth * 5 * 6;
        let compact_bytes = cfg.slots_per_pu * cfg.ancestor_depth * 6;
        PointOutput::new()
            .metric("full_bytes_per_pu", full_bytes)
            .metric("compact_bytes_per_pu", compact_bytes)
            .metric(
                "buffered_mhz",
                clock_rate_mhz(&cfg, AncestorMode::Buffered, false),
            )
            .metric(
                "compacted_mhz",
                clock_rate_mhz(&cfg, AncestorMode::BufferedCompacted, false),
            )
    });
    let result = sweep.execute(&args);

    println!("Ablations on {} ({})\n", d.name(), variant.name(d));
    let record = |config: &str| result.find(d.name(), &variant.name(d), config);
    let cycles = |config: &str| record(config).and_then(PointRecord::cycles);

    println!("1. vertex/edge bank isolation (dual ports) vs shared single port");
    rule(66);
    if let (Some(isolated), Some(shared)) = (cycles("default"), cycles("shared-port")) {
        println!(
            "isolated: {:>10} cycles | shared-port: {:>10} cycles | isolation gain {:.2}x\n",
            isolated,
            shared,
            shared as f64 / isolated as f64
        );
    }

    println!("2. adaptive round-robin dispatch vs static pre-assignment");
    rule(66);
    if let (Some(adaptive), Some(static_d)) = (cycles("default"), cycles("static-dispatch")) {
        println!(
            "adaptive: {:>10} cycles | static: {:>10} cycles | gain {:.2}x\n",
            adaptive,
            static_d,
            static_d as f64 / adaptive as f64
        );
    }

    println!("3. ancestor-record compaction (Fig. 10)");
    rule(66);
    if let Some(r) = record("compaction") {
        let f = |key: &str| r.metric_f64(key).unwrap_or(0.0);
        println!(
            "buffer bytes/PU: full {} -> compact {} ({:.1}x smaller); clock {:.0} -> {:.0} MHz\n",
            f("full_bytes_per_pu"),
            f("compact_bytes_per_pu"),
            f("full_bytes_per_pu") / f("compact_bytes_per_pu"),
            f("buffered_mhz"),
            f("compacted_mhz")
        );
    }

    println!("4. next-line edge prefetch (10% on-chip)");
    rule(66);
    if let (Some(with_pf), Some(without_pf)) = (
        record("prefetch-on").and_then(PointRecord::report),
        record("prefetch-off").and_then(PointRecord::report),
    ) {
        println!(
            "prefetch on: {:>10} cycles (hit {:.2}%) | off: {:>10} cycles (hit {:.2}%) | gain {:.2}x\n",
            with_pf.cycles,
            100.0 * with_pf.hit_ratio(),
            without_pf.cycles,
            100.0 * without_pf.hit_ratio(),
            without_pf.cycles as f64 / with_pf.cycles as f64
        );
    }

    println!("5. locality-preserved replacement vs LRU (10% on-chip)");
    rule(66);
    if let (Some(lamh), Some(static_lru)) = (
        record("lamh").and_then(PointRecord::report),
        record("static-lru").and_then(PointRecord::report),
    ) {
        println!(
            "LAMH: {:>10} cycles (hit {:.2}%) | Static+LRU: {:>10} cycles (hit {:.2}%) | gain {:.2}x",
            lamh.cycles,
            100.0 * lamh.hit_ratio(),
            static_lru.cycles,
            100.0 * static_lru.hit_ratio(),
            static_lru.cycles as f64 / lamh.cycles as f64
        );
    }

    println!("\n6. recurrent-pattern pair memo (DESIGN.md \u{a7}10)");
    rule(66);
    if let (Some(base), Some(memo)) = (
        record("default").and_then(PointRecord::report),
        record("memo-on").and_then(PointRecord::report),
    ) {
        let hits = memo.memo.map_or(0, |s| s.hits);
        println!(
            "memo off: {:>10} cycles | on: {:>10} cycles ({} hits) | gain {:.2}x\n",
            base.cycles,
            memo.cycles,
            hits,
            base.cycles as f64 / memo.cycles as f64
        );
    }

    println!("7. \u{3bb} autotuning over LAMH (10% on-chip)");
    rule(66);
    if let (Some(fixed), Some(adaptive)) = (
        record("lamh").and_then(PointRecord::report),
        record("adaptive-lambda").and_then(PointRecord::report),
    ) {
        println!(
            "fixed \u{3bb}: {:>10} cycles (hit {:.2}%) | adaptive: {:>10} cycles (hit {:.2}%, {} retunes) | gain {:.2}x\n",
            fixed.cycles,
            100.0 * fixed.hit_ratio(),
            adaptive.cycles,
            100.0 * adaptive.hit_ratio(),
            adaptive.lambda_retunes.unwrap_or(0),
            fixed.cycles as f64 / adaptive.cycles as f64
        );
    }

    println!("8. runtime scratchpad re-pinning (10% on-chip)");
    rule(66);
    if let (Some(pinned), Some(repin)) = (
        record("repin-off").and_then(PointRecord::report),
        record("repin-on").and_then(PointRecord::report),
    ) {
        println!(
            "static pins: {:>10} cycles (hit {:.2}%) | re-pinned: {:>10} cycles (hit {:.2}%, {} epochs) | gain {:.2}x",
            pinned.cycles,
            100.0 * pinned.hit_ratio(),
            repin.cycles,
            100.0 * repin.hit_ratio(),
            repin.pin_epochs.unwrap_or(0),
            pinned.cycles as f64 / repin.cycles as f64
        );
    }
    gramer_bench::finish(&result)
}
