//! Ablations of GRAMER design choices called out in DESIGN.md, measured
//! in simulated cycles / state bytes rather than host time:
//!
//! 1. vertex/edge memory isolation (the paper's §IV-A design point) vs a
//!    shared-port configuration;
//! 2. adaptive round-robin dispatch vs static pre-assignment (§V-C);
//! 3. compacted vs full ancestor records (Fig. 10's storage saving);
//! 4. the locality-preserved policy vs plain LRU in the low-priority
//!    memory at constrained capacity.

use gramer::pipeline::{clock_rate_mhz, AncestorMode};
use gramer::{GramerConfig, MemoryBudget, MemoryMode};
use gramer_bench::{analog, run_gramer, rule, AppVariant};
use gramer_graph::datasets::Dataset;
use gramer_memsim::LatencyConfig;

fn main() {
    let d = Dataset::P2p;
    let g = analog(d);
    let variant = AppVariant::Cf(4);

    println!("Ablations on {} ({})\n", d.name(), variant.name(d));

    // 1. Bank isolation: the paper splits vertex and edge traffic into
    // separate banks. Emulate a shared single-port bank by halving the
    // ports (both kinds squeezed through one port per partition).
    println!("1. vertex/edge bank isolation (dual ports) vs shared single port");
    rule(66);
    let isolated = run_gramer(&g, &app_of(variant, d), GramerConfig::default());
    let shared = run_gramer(
        &g,
        &app_of(variant, d),
        GramerConfig {
            latency: LatencyConfig {
                ports_per_bank: 1,
                ..LatencyConfig::default()
            },
            ..GramerConfig::default()
        },
    );
    println!(
        "isolated: {:>10} cycles | shared-port: {:>10} cycles | isolation gain {:.2}x\n",
        isolated.cycles,
        shared.cycles,
        shared.cycles as f64 / isolated.cycles as f64
    );

    // 2. Dispatch policy.
    println!("2. adaptive round-robin dispatch vs static pre-assignment");
    rule(66);
    let adaptive = isolated.cycles;
    let static_d = run_gramer(
        &g,
        &app_of(variant, d),
        GramerConfig {
            static_dispatch: true,
            ..GramerConfig::default()
        },
    );
    println!(
        "adaptive: {:>10} cycles | static: {:>10} cycles | gain {:.2}x\n",
        adaptive,
        static_d.cycles,
        static_d.cycles as f64 / adaptive as f64
    );

    // 3. Ancestor compaction: state bytes per PU and the clock impact.
    println!("3. ancestor-record compaction (Fig. 10)");
    rule(66);
    let cfg = GramerConfig::default();
    let full_bytes = cfg.slots_per_pu * cfg.ancestor_depth * 5 * 6; // all vertices
    let compact_bytes = cfg.slots_per_pu * cfg.ancestor_depth * 6; // one pair
    println!(
        "buffer bytes/PU: full {} -> compact {} ({:.1}x smaller); clock {:.0} -> {:.0} MHz\n",
        full_bytes,
        compact_bytes,
        full_bytes as f64 / compact_bytes as f64,
        clock_rate_mhz(&cfg, AncestorMode::Buffered, false),
        clock_rate_mhz(&cfg, AncestorMode::BufferedCompacted, false)
    );

    // 4. Next-line prefetching on the edge memory (§III's Prefetcher).
    println!("4. next-line edge prefetch (10% on-chip)");
    rule(66);
    let constrained = |prefetch: bool| {
        run_gramer(
            &g,
            &app_of(variant, d),
            GramerConfig {
                budget: MemoryBudget::Fraction(0.10),
                next_line_prefetch: prefetch,
                ..GramerConfig::default()
            },
        )
    };
    let with_pf = constrained(true);
    let without_pf = constrained(false);
    println!(
        "prefetch on: {:>10} cycles (hit {:.2}%) | off: {:>10} cycles (hit {:.2}%) | gain {:.2}x\n",
        with_pf.cycles,
        100.0 * with_pf.hit_ratio(),
        without_pf.cycles,
        100.0 * without_pf.hit_ratio(),
        without_pf.cycles as f64 / with_pf.cycles as f64
    );

    // 5. Replacement policy at constrained capacity.
    println!("5. locality-preserved replacement vs LRU (10% on-chip)");
    rule(66);
    let lamh = run_gramer(
        &g,
        &app_of(variant, d),
        GramerConfig {
            budget: MemoryBudget::Fraction(0.10),
            memory_mode: MemoryMode::Lamh,
            ..GramerConfig::default()
        },
    );
    let static_lru = run_gramer(
        &g,
        &app_of(variant, d),
        GramerConfig {
            budget: MemoryBudget::Fraction(0.10),
            memory_mode: MemoryMode::StaticLru,
            ..GramerConfig::default()
        },
    );
    println!(
        "LAMH: {:>10} cycles (hit {:.2}%) | Static+LRU: {:>10} cycles (hit {:.2}%) | gain {:.2}x",
        lamh.cycles,
        100.0 * lamh.hit_ratio(),
        static_lru.cycles,
        100.0 * static_lru.hit_ratio(),
        static_lru.cycles as f64 / lamh.cycles as f64
    );
}

fn app_of(variant: AppVariant, _d: Dataset) -> impl gramer_mining::EcmApp {
    match variant {
        AppVariant::Cf(k) => gramer_mining::apps::CliqueFinding::new(k).expect("valid k"),
        _ => unreachable!("ablation uses CF"),
    }
}
