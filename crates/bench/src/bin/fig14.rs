//! Figure 14: sensitivity of GRAMER to (a) the priority threshold τ and
//! (b) the replacement balancing factor λ, for 5-CF.
//!
//! The paper: τ = 5% already reaches 71.7–91.6% of the all-on-chip ideal
//! (τ = 50%); λ barely matters (0.91–1.07× across 0.5–8), because data
//! that is cold globally but briefly hot contributes little traffic.

use gramer::{GramerConfig, MemoryBudget};
use gramer_bench::{
    rule, run_gramer, AnalogCache, AppVariant, PointOutput, PointRecord, Sweep, SweepArgs,
};
use gramer_graph::datasets::Dataset;

// τ sweep on the small/medium graphs (the paper excludes the large ones
// for BRAM-capacity reasons; we do the same).
const TAU_GRAPHS: [Dataset; 4] = [
    Dataset::Citeseer,
    Dataset::P2p,
    Dataset::Astro,
    Dataset::Mico,
];
const TAUS: [f64; 6] = [0.01, 0.02, 0.05, 0.10, 0.20, 0.50];
const LAMBDAS: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 8.0];

fn tau_label(t: f64) -> String {
    format!("tau-{:.0}%", 100.0 * t)
}

fn lambda_label(l: f64) -> String {
    format!("lambda-{l}")
}

fn lambda_graphs() -> &'static [Dataset] {
    if gramer_bench::quick_mode() {
        &[Dataset::Citeseer, Dataset::P2p]
    } else {
        &TAU_GRAPHS
    }
}

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();
    let variant = AppVariant::Cf(5);
    let cache = AnalogCache::new();

    let mut sweep = Sweep::new("fig14");
    for d in TAU_GRAPHS {
        for t in TAUS {
            let cache = &cache;
            sweep.point(d.name(), &variant.name(d), &tau_label(t), move || {
                let cfg = GramerConfig {
                    tau: Some(t),
                    ..GramerConfig::default()
                };
                variant
                    .with_app(d, |app| run_gramer(cache.get(d), app, cfg))
                    .map(PointOutput::from_report)
            });
        }
    }
    for &d in lambda_graphs() {
        for l in LAMBDAS {
            let cache = &cache;
            sweep.point(d.name(), &variant.name(d), &lambda_label(l), move || {
                let cfg = GramerConfig {
                    budget: MemoryBudget::Fraction(0.10),
                    lambda: l,
                    ..GramerConfig::default()
                };
                variant
                    .with_app(d, |app| run_gramer(cache.get(d), app, cfg))
                    .map(PointOutput::from_report)
            });
        }
    }
    let result = sweep.execute(&args);

    println!("Figure 14(a) — performance vs tau, normalised to tau=50% (5-CF)");
    println!("(paper: tau=5% reaches 71.7-91.6% of the ideal)\n");
    print!("{:<10}", "Graph");
    for t in TAUS {
        print!("{:>8}", format!("{:.0}%", 100.0 * t));
    }
    println!();
    rule(58);
    for d in TAU_GRAPHS {
        let cycles = |config: &str| {
            result
                .find(d.name(), &variant.name(d), config)
                .and_then(PointRecord::cycles)
        };
        // Normalise to the ideal: everything on-chip.
        let Some(ideal) = cycles(&tau_label(0.50)) else {
            continue;
        };
        print!("{:<10}", d.name());
        for t in TAUS {
            match cycles(&tau_label(t)) {
                Some(c) => print!("{:>8.3}", ideal as f64 / c as f64),
                None => print!("{:>8}", "-"),
            }
        }
        println!();
    }

    println!("\nFigure 14(b) — performance vs lambda, normalised to lambda=1 (5-CF, 10% on-chip)");
    println!("(paper: 0.91-1.07x across the whole range)\n");
    print!("{:<10}", "Graph");
    for l in LAMBDAS {
        print!("{:>8}", format!("l={l}"));
    }
    println!();
    rule(50);
    for &d in lambda_graphs() {
        let cycles = |config: &str| {
            result
                .find(d.name(), &variant.name(d), config)
                .and_then(PointRecord::cycles)
        };
        let Some(base) = cycles(&lambda_label(1.0)) else {
            continue;
        };
        print!("{:<10}", d.name());
        for l in LAMBDAS {
            match cycles(&lambda_label(l)) {
                Some(c) => print!("{:>8.3}", base as f64 / c as f64),
                None => print!("{:>8}", "-"),
            }
        }
        println!();
    }
    gramer_bench::finish(&result)
}
