//! Figure 14: sensitivity of GRAMER to (a) the priority threshold τ and
//! (b) the replacement balancing factor λ, for 5-CF.
//!
//! The paper: τ = 5% already reaches 71.7–91.6% of the all-on-chip ideal
//! (τ = 50%); λ barely matters (0.91–1.07× across 0.5–8), because data
//! that is cold globally but briefly hot contributes little traffic.

use gramer::{GramerConfig, MemoryBudget};
use gramer_bench::{analog, run_gramer, rule, AppVariant};
use gramer_graph::datasets::Dataset;

fn main() {
    let variant = AppVariant::Cf(5);
    // τ sweep on the small/medium graphs (the paper excludes the large
    // ones for BRAM-capacity reasons; we do the same).
    let tau_graphs = [Dataset::Citeseer, Dataset::P2p, Dataset::Astro, Dataset::Mico];
    let taus = [0.01, 0.02, 0.05, 0.10, 0.20, 0.50];

    println!("Figure 14(a) — performance vs tau, normalised to tau=50% (5-CF)");
    println!("(paper: tau=5% reaches 71.7-91.6% of the ideal)\n");
    print!("{:<10}", "Graph");
    for t in taus {
        print!("{:>8}", format!("{:.0}%", 100.0 * t));
    }
    println!();
    rule(58);

    for d in tau_graphs {
        let g = analog(d);
        // Normalise to the ideal: everything on-chip.
        let ideal = variant.with_app(d, |app| {
            run_gramer(
                &g,
                app,
                GramerConfig {
                    tau: Some(0.5),
                    ..GramerConfig::default()
                },
            )
            .cycles
        });
        print!("{:<10}", d.name());
        for t in taus {
            let cfg = GramerConfig {
                tau: Some(t),
                ..GramerConfig::default()
            };
            let cycles = variant.with_app(d, |app| run_gramer(&g, app, cfg).cycles);
            print!("{:>8.3}", ideal as f64 / cycles as f64);
        }
        println!();
    }

    println!("\nFigure 14(b) — performance vs lambda, normalised to lambda=1 (5-CF, 10% on-chip)");
    println!("(paper: 0.91-1.07x across the whole range)\n");
    let lambdas = [0.5, 1.0, 2.0, 4.0, 8.0];
    let lambda_graphs: &[Dataset] = if gramer_bench::quick_mode() {
        &[Dataset::Citeseer, Dataset::P2p]
    } else {
        &tau_graphs
    };
    print!("{:<10}", "Graph");
    for l in lambdas {
        print!("{:>8}", format!("l={l}"));
    }
    println!();
    rule(50);
    for &d in lambda_graphs {
        let g = analog(d);
        let run = |lambda: f64| {
            let cfg = GramerConfig {
                budget: MemoryBudget::Fraction(0.10),
                lambda,
                ..GramerConfig::default()
            };
            variant.with_app(d, |app| run_gramer(&g, app, cfg).cycles)
        };
        let base = run(1.0);
        print!("{:<10}", d.name());
        for l in lambdas {
            print!("{:>8.3}", base as f64 / run(l) as f64);
        }
        println!();
    }
}
