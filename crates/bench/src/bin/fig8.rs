//! Figure 8: accuracy and cost of the ON_k heuristic (MC on P2P).
//!
//! (a) Accuracy = how much of the *ideal* top-5% set (ranked by traced
//! access counts per iteration) the ON_k prediction covers. The paper
//! finds 1-hop ON already exceeds 80% for all iterations.
//! (b) Overheads = ON_k computation time normalised to the mining time;
//! the paper reports k = 3 blowing up by up to 8500× while k = 1 stays
//! cheap.

use gramer_bench::{analog, rule};
use gramer_graph::datasets::Dataset;
use gramer_graph::{on1, VertexId};
use gramer_memsim::trace::AccessCounter;
use gramer_mining::apps::MotifCounting;
use gramer_mining::{AccessObserver, DfsEnumerator};
use std::time::Instant;

struct VertexTracePerIter {
    counters: Vec<AccessCounter>,
}

impl AccessObserver for VertexTracePerIter {
    fn vertex_access(&mut self, v: VertexId, size: usize) {
        self.counters[size].record(v as usize);
    }

    fn edge_access(&mut self, _slot: usize, _size: usize) {}
}

fn main() {
    let d = Dataset::P2p;
    let g = analog(d);
    let max_size = 4;

    println!("Figure 8 — ON_k heuristic on {} (MC)", d.name());
    println!("(paper: 1-hop ON is >80% accurate at negligible cost; 3-hop costs up to 8500x)\n");

    // Trace the ideal per-iteration hot sets.
    let mut obs = VertexTracePerIter {
        counters: (0..=max_size)
            .map(|_| AccessCounter::new(g.num_vertices()))
            .collect(),
    };
    let mine_start = Instant::now();
    DfsEnumerator::new(&g)
        .run_with_observer(&MotifCounting::new(max_size).expect("valid"), &mut obs);
    let mine_secs = mine_start.elapsed().as_secs_f64();

    // (a) accuracy per hop count and iteration.
    println!("(a) accuracy of the predicted top-5% set");
    print!("{:<10}", "k-hop");
    for iter in 1..max_size {
        print!("{:>12}", format!("iter {iter}"));
    }
    println!();
    rule(10 + 12 * (max_size - 1));
    let mut overheads = Vec::new();
    for k in 0..=3 {
        let t0 = Instant::now();
        let scores = on1::on_k_scores(&g, k);
        overheads.push(t0.elapsed().as_secs_f64());
        let predicted = scores.top_fraction(0.05);
        print!("{:<10}", format!("{k}-hop ON"));
        for iter in 1..max_size {
            let ideal = obs.counters[iter].top_fraction_mask(0.05);
            let acc = on1::top_set_accuracy(&predicted, &ideal);
            print!("{:>11.1}%", 100.0 * acc);
        }
        println!();
    }

    // (b) overheads normalised to total mining time.
    println!("\n(b) ON-computation overhead, normalised to mining time ({mine_secs:.3} s)");
    println!("{:<10} {:>12} {:>14}", "k-hop", "seconds", "normalised");
    rule(38);
    for (k, secs) in overheads.iter().enumerate() {
        println!(
            "{:<10} {:>12.6} {:>13.4}x",
            format!("{k}-hop"),
            secs,
            secs / mine_secs
        );
    }
    println!(
        "\n1-hop vs 3-hop cost ratio: {:.0}x",
        overheads[3] / overheads[1].max(1e-9)
    );
}
