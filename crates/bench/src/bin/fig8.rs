//! Figure 8: accuracy and cost of the ON_k heuristic (MC on P2P).
//!
//! (a) Accuracy = how much of the *ideal* top-5% set (ranked by traced
//! access counts per iteration) the ON_k prediction covers. The paper
//! finds 1-hop ON already exceeds 80% for all iterations.
//! (b) Overheads = ON_k computation time normalised to the mining time;
//! the paper reports k = 3 blowing up by up to 8500× while k = 1 stays
//! cheap.

use gramer_bench::{analog, rule, PointOutput, Sweep, SweepArgs};
use gramer_graph::datasets::Dataset;
use gramer_graph::{on1, VertexId};
use gramer_memsim::trace::AccessCounter;
use gramer_mining::apps::MotifCounting;
use gramer_mining::{AccessObserver, DfsEnumerator};
use std::sync::OnceLock;
use std::time::Instant;

const MAX_SIZE: usize = 4;

struct VertexTracePerIter {
    counters: Vec<AccessCounter>,
}

impl AccessObserver for VertexTracePerIter {
    fn vertex_access(&mut self, v: VertexId, size: usize) {
        self.counters[size].record(v as usize);
    }

    fn edge_access(&mut self, _slot: usize, _src: u32, _size: usize) {}
}

/// The ideal per-iteration top-5% masks plus the mining wall time, traced
/// once and shared by every k-hop point.
struct Trace {
    ideal: Vec<Vec<bool>>,
    mine_secs: f64,
}

fn trace(g: &gramer_graph::CsrGraph) -> Trace {
    let mut obs = VertexTracePerIter {
        counters: (0..=MAX_SIZE)
            .map(|_| AccessCounter::new(g.num_vertices()))
            .collect(),
    };
    let mine_start = Instant::now();
    DfsEnumerator::new(g)
        .run_with_observer(&MotifCounting::new(MAX_SIZE).expect("valid"), &mut obs);
    Trace {
        ideal: (1..MAX_SIZE)
            .map(|iter| obs.counters[iter].top_fraction_mask(0.05))
            .collect(),
        mine_secs: mine_start.elapsed().as_secs_f64(),
    }
}

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();
    let d = Dataset::P2p;
    let g = analog(d);
    let shared: OnceLock<Trace> = OnceLock::new();

    let mut sweep = Sweep::new("fig8");
    for k in 0..=3usize {
        let (g, shared) = (&g, &shared);
        sweep.point(d.name(), "MC", &format!("{k}-hop"), move || {
            let t = shared.get_or_init(|| trace(g));
            let t0 = Instant::now();
            let scores = on1::on_k_scores(g, k);
            let secs = t0.elapsed().as_secs_f64();
            let predicted = scores.top_fraction(0.05);
            let mut out = PointOutput::new()
                .metric("k", k)
                .metric("on_seconds", secs)
                .metric("mine_seconds", t.mine_secs)
                .metric("normalised", secs / t.mine_secs.max(1e-12));
            for (i, ideal) in t.ideal.iter().enumerate() {
                out = out.metric(
                    &format!("accuracy_iter{}", i + 1),
                    on1::top_set_accuracy(&predicted, ideal),
                );
            }
            out
        });
    }
    let result = sweep.execute(&args);

    println!("Figure 8 — ON_k heuristic on {} (MC)", d.name());
    println!("(paper: 1-hop ON is >80% accurate at negligible cost; 3-hop costs up to 8500x)\n");

    println!("(a) accuracy of the predicted top-5% set");
    print!("{:<10}", "k-hop");
    for iter in 1..MAX_SIZE {
        print!("{:>12}", format!("iter {iter}"));
    }
    println!();
    rule(10 + 12 * (MAX_SIZE - 1));
    let record = |k: usize| result.find(d.name(), "MC", &format!("{k}-hop"));
    for k in 0..=3usize {
        let Some(r) = record(k) else { continue };
        print!("{:<10}", format!("{k}-hop ON"));
        for iter in 1..MAX_SIZE {
            let acc = r.metric_f64(&format!("accuracy_iter{iter}")).unwrap_or(0.0);
            print!("{:>11.1}%", 100.0 * acc);
        }
        println!();
    }

    let mine_secs = record(0)
        .and_then(|r| r.metric_f64("mine_seconds"))
        .unwrap_or(0.0);
    println!("\n(b) ON-computation overhead, normalised to mining time ({mine_secs:.3} s)");
    println!("{:<10} {:>12} {:>14}", "k-hop", "seconds", "normalised");
    rule(38);
    for k in 0..=3usize {
        let Some(r) = record(k) else { continue };
        println!(
            "{:<10} {:>12.6} {:>13.4}x",
            format!("{k}-hop"),
            r.metric_f64("on_seconds").unwrap_or(0.0),
            r.metric_f64("normalised").unwrap_or(0.0)
        );
    }
    let secs = |k: usize| record(k).and_then(|r| r.metric_f64("on_seconds"));
    if let (Some(h1), Some(h3)) = (secs(1), secs(3)) {
        println!("\n1-hop vs 3-hop cost ratio: {:.0}x", h3 / h1.max(1e-9));
    }
    gramer_bench::finish(&result)
}
