//! Table IV: clock rate with and without ancestor buffers and compaction.
//!
//! Produced by the calibrated critical-path model in `gramer::pipeline`
//! (RTL synthesis substituted; see DESIGN.md). The structural claim —
//! buffering beats flowing state, compaction beats wide buffer words —
//! emerges from the model, not from per-row constants.

use gramer::pipeline::{clock_rate_mhz, AncestorMode};
use gramer::GramerConfig;
use gramer_bench::{rule, PointOutput, Sweep, SweepArgs};

const MODES: [(&str, AncestorMode); 3] = [
    ("w/o AB", AncestorMode::Flowing),
    ("w/ AB", AncestorMode::Buffered),
    ("w/ AB + Compaction", AncestorMode::BufferedCompacted),
];

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();

    let mut sweep = Sweep::new("table4");
    for (label, mode) in MODES {
        sweep.point("pipeline", "clock-model", label, move || {
            let cfg = GramerConfig::default();
            PointOutput::new()
                .metric("cf_mhz", clock_rate_mhz(&cfg, mode, false))
                .metric("pattern_mhz", clock_rate_mhz(&cfg, mode, true))
        });
    }
    let result = sweep.execute(&args);

    println!("Table IV — clock rate of GRAMER pipeline variants (modeled)");
    println!("(paper: w/o AB 78-80 MHz, w/ AB 96-97 MHz, w/ AB+Compaction 207-213 MHz)\n");
    println!("{:<22} {:>8} {:>8} {:>8}", "", "CF", "FSM", "MC");
    rule(50);

    let cf = |label: &str| {
        result
            .find("pipeline", "clock-model", label)
            .and_then(|r| r.metric_f64("cf_mhz"))
    };
    for (label, _) in MODES {
        let Some(r) = result.find("pipeline", "clock-model", label) else {
            continue;
        };
        let pat = r.metric_f64("pattern_mhz").unwrap_or(0.0);
        println!(
            "{:<22} {:>5.0}MHz {:>5.0}MHz {:>5.0}MHz",
            label,
            r.metric_f64("cf_mhz").unwrap_or(0.0),
            pat,
            pat
        );
    }

    if let (Some(base), Some(ab), Some(comp)) =
        (cf("w/o AB"), cf("w/ AB"), cf("w/ AB + Compaction"))
    {
        println!(
            "\nAB improves the clock by {:.1}% (paper: 23.1%); compaction adds {:.1}% (paper: 115.6%)",
            100.0 * (ab / base - 1.0),
            100.0 * (comp / ab - 1.0)
        );
    }
    gramer_bench::finish(&result)
}
