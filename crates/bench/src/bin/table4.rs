//! Table IV: clock rate with and without ancestor buffers and compaction.
//!
//! Produced by the calibrated critical-path model in `gramer::pipeline`
//! (RTL synthesis substituted; see DESIGN.md). The structural claim —
//! buffering beats flowing state, compaction beats wide buffer words —
//! emerges from the model, not from per-row constants.

use gramer::pipeline::{clock_rate_mhz, AncestorMode};
use gramer::GramerConfig;
use gramer_bench::rule;

fn main() {
    let cfg = GramerConfig::default();

    println!("Table IV — clock rate of GRAMER pipeline variants (modeled)");
    println!("(paper: w/o AB 78-80 MHz, w/ AB 96-97 MHz, w/ AB+Compaction 207-213 MHz)\n");
    println!("{:<22} {:>8} {:>8} {:>8}", "", "CF", "FSM", "MC");
    rule(50);

    for (label, mode) in [
        ("w/o AB", AncestorMode::Flowing),
        ("w/ AB", AncestorMode::Buffered),
        ("w/ AB + Compaction", AncestorMode::BufferedCompacted),
    ] {
        let cf = clock_rate_mhz(&cfg, mode, false);
        let pat = clock_rate_mhz(&cfg, mode, true);
        println!(
            "{:<22} {:>5.0}MHz {:>5.0}MHz {:>5.0}MHz",
            label, cf, pat, pat
        );
    }

    let base = clock_rate_mhz(&cfg, AncestorMode::Flowing, false);
    let ab = clock_rate_mhz(&cfg, AncestorMode::Buffered, false);
    let comp = clock_rate_mhz(&cfg, AncestorMode::BufferedCompacted, false);
    println!(
        "\nAB improves the clock by {:.1}% (paper: 23.1%); compaction adds {:.1}% (paper: 115.6%)",
        100.0 * (ab / base - 1.0),
        100.0 * (comp / ab - 1.0)
    );
}
