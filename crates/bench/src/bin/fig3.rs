//! Figure 3: pipeline stalls due to random vertex and edge accesses.
//!
//! The paper profiles CF/FSM/MC on five graphs with VTune on a 14-core
//! E5-2680 v4; we substitute the cache model of `gramer-memsim`. Because
//! the datasets are *scaled* analogs, the cache hierarchy is scaled by the
//! same divisor (floored at realistic minima) so the graph-size-to-cache
//! ratio — the variable Fig. 3 actually sweeps — is preserved. The
//! "Others" component is a lean mining loop (~25 cycles per extension
//! candidate), as VTune would see for the C++ engines.
//!
//! Paper's headline: small graphs (Citeseer) stall ~30%, growing to 67.9%
//! (Patents) as graphs outgrow the caches.

use gramer_baselines::profile_on_cpu_with;
use gramer_bench::{analog, divisor, fsm_threshold, rule};
use gramer_graph::datasets::Dataset;
use gramer_memsim::CpuCacheConfig;
use gramer_mining::apps::{CliqueFinding, FrequentSubgraphMining, MotifCounting};
use gramer_mining::EcmApp;

/// Compute cycles per extension candidate of a tight native mining loop.
const COMPUTE_CYCLES_PER_ITEM: f64 = 25.0;

fn scaled_cache(d: Dataset) -> CpuCacheConfig {
    let div = divisor(d);
    let full = CpuCacheConfig::default();
    CpuCacheConfig {
        l1_bytes: (full.l1_bytes / div).max(1 << 10),
        l2_bytes: (full.l2_bytes / div).max(8 << 10),
        l3_bytes: (full.l3_bytes / div).max(256 << 10),
        ..full
    }
}

fn main() {
    println!("Figure 3 — performance breakdown on the modeled CPU (%)");
    println!("(paper: stalls grow from ~30% on cache-resident Citeseer to 67.9% on Patents)\n");
    println!(
        "{:<10} {:<10} {:>8} {:>12} {:>10} {:>8}",
        "Graph", "App", "Vertex%", "Edge%", "Others%", "Stall%"
    );
    rule(64);

    for d in Dataset::TRACEABLE.iter().copied().chain([Dataset::Patents]) {
        let g = analog(d);
        let cache = scaled_cache(d);
        run(&g, d, &CliqueFinding::new(4).expect("valid k"), cache);
        run(&g, d, &FrequentSubgraphMining::new(fsm_threshold(d)), cache);
        run(&g, d, &MotifCounting::new(3).expect("valid k"), cache);
        rule(64);
    }
    println!(
        "\nanalog scale divisors (cache hierarchy scaled alike): {:?}",
        Dataset::TRACEABLE
            .iter()
            .copied()
            .chain([Dataset::Patents])
            .map(|d| (d.name(), divisor(d)))
            .collect::<Vec<_>>()
    );
}

fn run<A: EcmApp>(g: &gramer_graph::CsrGraph, d: Dataset, app: &A, cache: CpuCacheConfig) {
    let profile = profile_on_cpu_with(g, app, cache);
    let compute = profile.work_items as f64 * COMPUTE_CYCLES_PER_ITEM;
    let (v, e, o) = profile.stall_breakdown(compute);
    println!(
        "{:<10} {:<10} {:>7.1}% {:>11.1}% {:>9.1}% {:>7.1}%",
        d.name(),
        EcmApp::name(app),
        100.0 * v,
        100.0 * e,
        100.0 * o,
        100.0 * (v + e)
    );
}
