//! Figure 3: pipeline stalls due to random vertex and edge accesses.
//!
//! The paper profiles CF/FSM/MC on five graphs with VTune on a 14-core
//! E5-2680 v4; we substitute the cache model of `gramer-memsim`. Because
//! the datasets are *scaled* analogs, the cache hierarchy is scaled by the
//! same divisor (floored at realistic minima) so the graph-size-to-cache
//! ratio — the variable Fig. 3 actually sweeps — is preserved. The
//! "Others" component is a lean mining loop (~25 cycles per extension
//! candidate), as VTune would see for the C++ engines.
//!
//! Paper's headline: small graphs (Citeseer) stall ~30%, growing to 67.9%
//! (Patents) as graphs outgrow the caches.

use gramer_baselines::profile_on_cpu_with;
use gramer_bench::{
    divisor, fsm_threshold, rule, AnalogCache, AppVariant, PointOutput, Sweep, SweepArgs,
};
use gramer_graph::datasets::Dataset;
use gramer_graph::CsrGraph;
use gramer_memsim::CpuCacheConfig;
use gramer_mining::apps::{CliqueFinding, FrequentSubgraphMining, MotifCounting};
use gramer_mining::EcmApp;

/// Compute cycles per extension candidate of a tight native mining loop.
const COMPUTE_CYCLES_PER_ITEM: f64 = 25.0;

fn scaled_cache(d: Dataset) -> CpuCacheConfig {
    let div = divisor(d);
    let full = CpuCacheConfig::default();
    CpuCacheConfig {
        l1_bytes: (full.l1_bytes / div).max(1 << 10),
        l2_bytes: (full.l2_bytes / div).max(8 << 10),
        l3_bytes: (full.l3_bytes / div).max(256 << 10),
        ..full
    }
}

fn datasets() -> impl Iterator<Item = Dataset> {
    Dataset::TRACEABLE.iter().copied().chain([Dataset::Patents])
}

const VARIANTS: [AppVariant; 3] = [AppVariant::Cf(4), AppVariant::Fsm, AppVariant::Mc(3)];

fn main() -> std::process::ExitCode {
    let args = SweepArgs::parse();
    let cache = AnalogCache::new();

    let mut sweep = Sweep::new("fig3");
    for d in datasets() {
        for variant in VARIANTS {
            let cache = &cache;
            sweep.point(d.name(), &variant.name(d), "scaled-cache", move || {
                profile_point(cache.get(d), d, variant)
            });
        }
    }
    let result = sweep.execute(&args);

    println!("Figure 3 — performance breakdown on the modeled CPU (%)");
    println!("(paper: stalls grow from ~30% on cache-resident Citeseer to 67.9% on Patents)\n");
    println!(
        "{:<10} {:<10} {:>8} {:>12} {:>10} {:>8}",
        "Graph", "App", "Vertex%", "Edge%", "Others%", "Stall%"
    );
    rule(64);
    for d in datasets() {
        let mut printed = false;
        for variant in VARIANTS {
            let Some(r) = result.find(d.name(), &variant.name(d), "scaled-cache") else {
                continue;
            };
            printed = true;
            let pct = |key: &str| 100.0 * r.metric_f64(key).unwrap_or(0.0);
            println!(
                "{:<10} {:<10} {:>7.1}% {:>11.1}% {:>9.1}% {:>7.1}%",
                d.name(),
                variant.name(d),
                pct("vertex_stall"),
                pct("edge_stall"),
                pct("others"),
                pct("stall")
            );
        }
        if printed {
            rule(64);
        }
    }
    println!(
        "\nanalog scale divisors (cache hierarchy scaled alike): {:?}",
        datasets()
            .map(|d| (d.name(), divisor(d)))
            .collect::<Vec<_>>()
    );
    gramer_bench::finish(&result)
}

fn profile_point(g: &CsrGraph, d: Dataset, variant: AppVariant) -> PointOutput {
    fn go<A: EcmApp>(g: &CsrGraph, d: Dataset, app: &A) -> PointOutput {
        let profile = profile_on_cpu_with(g, app, scaled_cache(d));
        let compute = profile.work_items as f64 * COMPUTE_CYCLES_PER_ITEM;
        let (v, e, o) = profile.stall_breakdown(compute);
        PointOutput::new()
            .metric("vertex_stall", v)
            .metric("edge_stall", e)
            .metric("others", o)
            .metric("stall", v + e)
            .metric("work_items", profile.work_items)
    }
    match variant {
        AppVariant::Cf(k) => go(g, d, &CliqueFinding::new(k).expect("valid k")),
        AppVariant::Mc(k) => go(g, d, &MotifCounting::new(k).expect("valid k")),
        AppVariant::Fsm => go(g, d, &FrequentSubgraphMining::new(fsm_threshold(d))),
    }
}
