use gramer::{preprocess, GramerConfig, Simulator};
use gramer_graph::datasets::Dataset;
use gramer_memsim::trace::IterationTrace;
use gramer_mining::apps::CliqueFinding;
use gramer_mining::{AccessObserver, DfsEnumerator};

struct Tracer {
    t: IterationTrace,
}
impl AccessObserver for Tracer {
    fn vertex_access(&mut self, v: u32, _s: usize) {
        self.t.vertex.record(v as usize);
    }
    fn edge_access(&mut self, slot: usize, _src: u32, _s: usize) {
        self.t.edge.record(slot);
    }
}

fn main() {
    let g = Dataset::Mico.generate_scaled(100);
    let cfg = GramerConfig {
        tau: Some(0.05),
        ..GramerConfig::default()
    };
    let pre = preprocess(&g, &cfg).unwrap();
    let rg = &pre.graph;
    let mut tr = Tracer {
        t: IterationTrace::new(rg.num_vertices(), rg.adjacency_len()),
    };
    let app = CliqueFinding::new(4).unwrap();
    DfsEnumerator::new(rg).run_with_observer(&app, &mut tr);
    let vshare: u64 = tr.t.vertex.counts()[..pre.vertex_pin].iter().sum();
    let eshare: u64 = tr.t.edge.counts()[..pre.edge_pin].iter().sum();
    println!(
        "V={} E={} vpin={} epin={}",
        rg.num_vertices(),
        rg.num_edges(),
        pre.vertex_pin,
        pre.edge_pin
    );
    println!(
        "traffic to pinned: vertex={:.3} edge={:.3}; ideal top5: v={:.3} e={:.3}",
        vshare as f64 / tr.t.vertex.total() as f64,
        eshare as f64 / tr.t.edge.total() as f64,
        tr.t.vertex.top_share(0.05),
        tr.t.edge.top_share(0.05)
    );
    let r = Simulator::new(&pre, cfg).unwrap().run(&app).unwrap();
    println!(
        "tau=5%: cycles={} vhit={:.3} ehit={:.3} dram={}",
        r.cycles,
        r.mem.vertex.on_chip_ratio(),
        r.mem.edge.on_chip_ratio(),
        r.dram_requests
    );
}
