//! Algorithmic ablations measured in host time:
//!
//! * canonical-extension deduplication (GRAMER's comparisons-only
//!   automorphism filter) vs a hash-set of normalised vertex sets;
//! * the fast single-pass ON1 vs the generic BFS-based ON_k at k = 1.

use criterion::{criterion_group, criterion_main, Criterion};
use gramer_graph::{generate, on1, CsrGraph, VertexId};
use gramer_mining::{apps::MotifCounting, DfsEnumerator, Explorer, NullObserver, Step};
use std::collections::HashSet;

/// Enumerates connected ≤k-subgraphs by extending with *every* neighbor
/// and deduplicating through a hash set — the strawman the canonicality
/// check replaces.
fn hashset_dedup_count(g: &CsrGraph, k: usize) -> u64 {
    let mut seen: HashSet<Vec<VertexId>> = HashSet::new();
    let mut stack: Vec<Vec<VertexId>> = g.vertices().map(|v| vec![v]).collect();
    let mut count = 0;
    while let Some(emb) = stack.pop() {
        if emb.len() >= 2 {
            count += 1;
        }
        if emb.len() == k {
            continue;
        }
        for &v in &emb {
            for &w in g.neighbors(v) {
                if emb.contains(&w) {
                    continue;
                }
                let mut next = emb.clone();
                next.push(w);
                let mut key = next.clone();
                key.sort_unstable();
                if seen.insert(key) {
                    stack.push(next);
                }
            }
        }
    }
    count
}

/// The canonical-extension equivalent via the step-wise explorer.
fn canonical_count(g: &CsrGraph, k: usize) -> u64 {
    let mut obs = NullObserver;
    let mut count = 0;
    for root in g.vertices() {
        let mut ex = Explorer::new(g, root);
        loop {
            match ex.step(&mut obs) {
                Step::Candidate => {
                    count += 1;
                    if ex.embedding().len() < k {
                        ex.descend();
                    } else {
                        ex.retract();
                    }
                }
                Step::Done => break,
                _ => {}
            }
        }
    }
    count
}

fn dedup_ablation(c: &mut Criterion) {
    let g = generate::chung_lu(800, 2400, 2.6, 13);
    let mut group = c.benchmark_group("ablation_dedup");
    group.sample_size(10);
    group.bench_function("canonical_extension", |b| b.iter(|| canonical_count(&g, 3)));
    group.bench_function("hashset_dedup", |b| b.iter(|| hashset_dedup_count(&g, 3)));
    group.finish();

    // Both must agree on the number of embeddings.
    assert_eq!(canonical_count(&g, 3), hashset_dedup_count(&g, 3));
}

fn on1_ablation(c: &mut Criterion) {
    let g = generate::chung_lu(30_000, 120_000, 2.4, 17);
    let mut group = c.benchmark_group("ablation_on1");
    group.bench_function("on1_single_pass", |b| b.iter(|| on1::on1_scores(&g)));
    group.bench_function("on1_generic_bfs", |b| b.iter(|| on1::on_k_scores(&g, 1)));
    group.finish();
}

fn mining_reference(c: &mut Criterion) {
    // Reference point for the two ablations above: a real mining pass.
    let g = generate::chung_lu(800, 2400, 2.6, 13);
    let mut group = c.benchmark_group("ablation_reference");
    group.sample_size(10);
    group.bench_function("dfs_3mc", |b| {
        let app = MotifCounting::new(3).expect("valid");
        b.iter(|| DfsEnumerator::new(&g).run(&app).embeddings)
    });
    group.finish();
}

criterion_group!(benches, dedup_ablation, on1_ablation, mining_reference);
criterion_main!(benches);
