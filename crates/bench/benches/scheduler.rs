//! Host-side cost of the discrete-event scheduler: the calendar/bucket
//! queue (the default) against the binary-heap reference, first on
//! synthetic simulator-shaped traffic, then end-to-end on a golden-size
//! workload. The queues must order events identically (property-tested
//! in `gramer`); these benches track only what each costs the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gramer::events::{CalendarQueue, EventQueue, HeapQueue};
use gramer::{preprocess, GramerConfig, Scheduler, Simulator};
use gramer_graph::generate;
use gramer_mining::apps::CliqueFinding;

/// Number of pop+push pairs per synthetic measurement.
const OPS: u64 = 200_000;

/// Drives `q` through [`OPS`] pop+push pairs shaped like simulator
/// traffic: 128 concurrent slot events (8 PUs x 16 slots) whose
/// completion times advance by small, deterministically varied deltas —
/// the scratchpad/cache latencies plus port queueing the event loop
/// produces.
fn pump<Q: EventQueue>(q: &mut Q) -> u64 {
    for id in 0..128u32 {
        q.push((id % 7) as u64, id);
    }
    let mut acc = 0u64;
    for i in 0..OPS {
        let (t, id) = q.pop().expect("queue cannot run dry here");
        acc = acc.wrapping_add(t);
        let delta = 1 + (i.wrapping_mul(2654435761) >> 7) % 9;
        q.push(t + delta, id);
    }
    while q.pop().is_some() {}
    acc
}

fn queue_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.bench_function(BenchmarkId::new("pump", "calendar"), |b| {
        b.iter(|| pump(&mut CalendarQueue::default()))
    });
    group.bench_function(BenchmarkId::new("pump", "heap"), |b| {
        b.iter(|| pump(&mut HeapQueue::default()))
    });
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    // The BA golden workload (see tests/golden.rs): large enough to
    // exercise acquisition, stealing and traceback traffic, small enough
    // to iterate.
    let graph = generate::barabasi_albert(200, 3, 11);
    let app = CliqueFinding::new(4).expect("valid k");
    let base = GramerConfig::default();
    let pre = preprocess(&graph, &base).expect("golden config preprocesses");

    let mut group = c.benchmark_group("scheduler");
    for (name, scheduler) in [("calendar", Scheduler::Calendar), ("heap", Scheduler::Heap)] {
        let cfg = GramerConfig {
            scheduler,
            ..base.clone()
        };
        group.bench_function(BenchmarkId::new("simulate_ba200_cf4", name), |b| {
            b.iter(|| {
                Simulator::new(&pre, cfg.clone())
                    .expect("golden config is valid")
                    .run(&app)
                    .expect("golden workload simulates")
                    .cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, queue_traffic, end_to_end);
criterion_main!(benches);
