//! Host-side cost of full simulated runs (preprocess + cycle simulation),
//! i.e. how fast the simulator itself is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gramer::{preprocess, GramerConfig, Simulator};
use gramer_graph::datasets::Dataset;
use gramer_mining::apps::{CliqueFinding, MotifCounting};

fn end_to_end(c: &mut Criterion) {
    let g = Dataset::Citeseer.generate_scaled(2);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("simulate", "3-CF"), |b| {
        let cfg = GramerConfig::default();
        let pre = preprocess(&g, &cfg).expect("valid config");
        let app = CliqueFinding::new(3).expect("valid");
        b.iter(|| {
            let sim = Simulator::new(&pre, cfg.clone()).expect("valid config");
            sim.run(&app).expect("run succeeds").cycles
        })
    });
    group.bench_function(BenchmarkId::new("simulate", "3-MC"), |b| {
        let cfg = GramerConfig::default();
        let pre = preprocess(&g, &cfg).expect("valid config");
        let app = MotifCounting::new(3).expect("valid");
        b.iter(|| {
            let sim = Simulator::new(&pre, cfg.clone()).expect("valid config");
            sim.run(&app).expect("run succeeds").cycles
        })
    });
    group.bench_function("preprocess", |b| {
        let cfg = GramerConfig::default();
        b.iter(|| preprocess(&g, &cfg).expect("valid config").vertex_pin)
    });
    group.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
