//! Host-side throughput of the enumeration engines: DFS vs BFS, and the
//! clique filter's subtree pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gramer_graph::generate;
use gramer_mining::apps::{CliqueFinding, MotifCounting};
use gramer_mining::{BfsEnumerator, DfsEnumerator};

fn enumeration(c: &mut Criterion) {
    let g = generate::chung_lu(2000, 6000, 2.5, 7);
    let mut group = c.benchmark_group("enumeration");

    group.bench_function(BenchmarkId::new("dfs", "3-MC"), |b| {
        let app = MotifCounting::new(3).expect("valid");
        b.iter(|| DfsEnumerator::new(&g).run(&app).embeddings)
    });
    group.bench_function(BenchmarkId::new("bfs", "3-MC"), |b| {
        let app = MotifCounting::new(3).expect("valid");
        b.iter(|| BfsEnumerator::new(&g).run(&app).0.embeddings)
    });
    group.bench_function(BenchmarkId::new("dfs", "4-CF"), |b| {
        let app = CliqueFinding::new(4).expect("valid");
        b.iter(|| DfsEnumerator::new(&g).run(&app).embeddings)
    });
    group.finish();
}

criterion_group!(benches, enumeration);
criterion_main!(benches);
