//! Host-side cost of the memory-hierarchy components: replacement
//! policies, hybrid controller, banked subsystem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gramer_memsim::policy::PolicyKind;
use gramer_memsim::{
    AccessPath, DataKind, DramConfig, HybridConfig, HybridMemory, LatencyConfig, MemorySubsystem,
    SetAssociativeCache, SubsystemConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn zipf_stream(n: u64, len: usize, seed: u64) -> Vec<u64> {
    // Cheap Zipf-ish stream: cube a uniform draw to concentrate mass.
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let r: f64 = rng.gen::<f64>();
            ((r * r * r) * n as f64) as u64
        })
        .collect()
}

fn policies(c: &mut Criterion) {
    let stream = zipf_stream(1 << 16, 1 << 15, 3);
    let mut group = c.benchmark_group("cache_policy");
    for (name, kind) in [
        ("lru", PolicyKind::Lru),
        ("fifo", PolicyKind::Fifo),
        ("lirs", PolicyKind::Lirs),
        ("slru", PolicyKind::SegmentedLru),
        ("locality", PolicyKind::LocalityPreserved { lambda: 1.0 }),
    ] {
        group.bench_function(BenchmarkId::new("access", name), |b| {
            b.iter(|| {
                let mut cache = SetAssociativeCache::new(256, 4, 0, kind);
                let mut hits = 0u64;
                for &item in &stream {
                    hits += cache.access(item, item as u32) as u64;
                }
                hits
            })
        });
    }
    group.finish();
}

fn hybrid_and_subsystem(c: &mut Criterion) {
    let stream = zipf_stream(1 << 16, 1 << 15, 9);
    let mut group = c.benchmark_group("memory");

    group.bench_function("hybrid_access", |b| {
        b.iter(|| {
            let mut m = HybridMemory::new(
                DataKind::Vertex,
                HybridConfig {
                    pinned: (0..1 << 16).map(|i| i < 3000).collect::<Vec<_>>().into(),
                    sets: 256,
                    ways: 4,
                    block_bits: 0,
                    policy: PolicyKind::default(),
                },
            );
            for &item in &stream {
                m.access(item, item as u32);
            }
            m.stats().total()
        })
    });

    // Every item pinned: isolates the subsystem's fixed per-access
    // overhead (routing, FIFO admission, port arbitration) from cache
    // and DRAM behavior. Real mining workloads resolve the large
    // majority of accesses in the scratchpad, so this path dominates
    // end-to-end simulator throughput.
    group.bench_function("subsystem_pinned_access", |b| {
        // Construction (mask scans, bank allocation) is hoisted out of
        // the measured loop: this bench tracks the per-access cost only.
        let hybrid = HybridConfig {
            pinned: vec![true; 1 << 16].into(),
            sets: 64,
            ways: 4,
            block_bits: 0,
            policy: PolicyKind::default(),
        };
        let mut mem = MemorySubsystem::new(SubsystemConfig {
            partitions: 8,
            vertex: hybrid.clone(),
            edge: hybrid,
            vertex_route_bits: 0,
            edge_route_bits: 2,
            next_line_prefetch: false,
            latency: LatencyConfig::default(),
            dram: DramConfig::default(),
            access_path: AccessPath::default(),
        });
        b.iter(|| {
            mem.reset();
            let mut now = 0;
            for &item in &stream {
                now = mem.access(DataKind::Edge, item, item as u32, now).finish;
            }
            now
        })
    });

    group.bench_function("subsystem_timed_access", |b| {
        b.iter(|| {
            let hybrid = HybridConfig {
                pinned: (0..1 << 16).map(|i| i < 3000).collect::<Vec<_>>().into(),
                sets: 64,
                ways: 4,
                block_bits: 0,
                policy: PolicyKind::default(),
            };
            let mut mem = MemorySubsystem::new(SubsystemConfig {
                partitions: 8,
                vertex: hybrid.clone(),
                edge: hybrid,
                vertex_route_bits: 0,
                edge_route_bits: 2,
                next_line_prefetch: false,
                latency: LatencyConfig::default(),
                dram: DramConfig::default(),
                access_path: AccessPath::default(),
            });
            let mut now = 0;
            for &item in &stream {
                now = mem.access(DataKind::Edge, item, item as u32, now).finish;
            }
            now
        })
    });
    group.finish();
}

criterion_group!(benches, policies, hybrid_and_subsystem);
criterion_main!(benches);
