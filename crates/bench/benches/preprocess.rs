//! Host-side cost of GRAMER's preprocessing: the ON_k heuristics and the
//! graph reordering (the Fig. 8(b) / Fig. 11(b) components).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gramer_graph::{generate, on1, reorder};

fn preprocess(c: &mut Criterion) {
    let g = generate::chung_lu(20_000, 80_000, 2.4, 11);
    let mut group = c.benchmark_group("preprocess");

    group.bench_function(BenchmarkId::new("on_k", "0-hop"), |b| {
        b.iter(|| on1::on0_scores(&g))
    });
    group.bench_function(BenchmarkId::new("on_k", "1-hop-fast"), |b| {
        b.iter(|| on1::on1_scores(&g))
    });
    group.bench_function(BenchmarkId::new("on_k", "1-hop-bfs"), |b| {
        b.iter(|| on1::on_k_scores(&g, 1))
    });
    group.bench_function(BenchmarkId::new("on_k", "2-hop"), |b| {
        b.iter(|| on1::on_k_scores(&g, 2))
    });
    group.bench_function("reorder_by_on1", |b| {
        b.iter(|| reorder::reorder_by_on1(&g).graph.num_edges())
    });
    group.finish();
}

criterion_group!(benches, preprocess);
criterion_main!(benches);
