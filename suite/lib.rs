//! Umbrella crate for the GRAMER reproduction workspace.
//!
//! This crate re-exports the workspace members so the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/` can use a
//! single dependency. Library users should depend on the individual crates
//! ([`gramer`], [`gramer_graph`], [`gramer_mining`], [`gramer_memsim`],
//! [`gramer_baselines`]) directly.
//!
//! # Example
//!
//! ```
//! use gramer_suite::gramer::{preprocess, GramerConfig, Simulator};
//! use gramer_suite::gramer_graph::generate;
//! use gramer_suite::gramer_mining::apps::CliqueFinding;
//!
//! let graph = generate::barabasi_albert(100, 3, 7);
//! let config = GramerConfig::default();
//! let pre = preprocess(&graph, &config).unwrap();
//! let app = CliqueFinding::new(3).unwrap();
//! let report = Simulator::new(&pre, config).unwrap().run(&app).unwrap();
//! assert!(report.cycles > 0);
//! ```

#![warn(missing_docs)]

pub use gramer;
pub use gramer_baselines;
pub use gramer_graph;
pub use gramer_memsim;
pub use gramer_mining;
