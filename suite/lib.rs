//! Umbrella crate for the GRAMER reproduction workspace.
//!
//! This crate re-exports the workspace members so the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/` can use a
//! single dependency. Library users should depend on the individual crates
//! ([`gramer`], [`gramer_graph`], [`gramer_mining`], [`gramer_memsim`],
//! [`gramer_baselines`]) directly.

pub use gramer;
pub use gramer_baselines;
pub use gramer_graph;
pub use gramer_memsim;
pub use gramer_mining;
