//! Frequent subgraph mining on a labeled graph: find the 3-vertex labeled
//! patterns that occur at least `threshold` times (the Mico-style FSM
//! workload of the paper).
//!
//! ```sh
//! cargo run --release --example fsm_labeled
//! ```

use gramer_suite::gramer::{preprocess, GramerConfig, Simulator};
use gramer_suite::gramer_graph::generate;
use gramer_suite::gramer_mining::apps::FrequentSubgraphMining;
use gramer_suite::gramer_mining::{BfsEnumerator, DfsEnumerator};

fn main() {
    // A labeled power-law graph (4 vertex classes).
    let base = generate::chung_lu(3_000, 12_000, 2.4, 7);
    let graph = generate::with_random_labels(&base, 4, 7);
    let threshold = 500;
    let app = FrequentSubgraphMining::new(threshold);

    println!(
        "graph: {} vertices, {} edges, 4 labels; threshold = {threshold}\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Mine on the accelerator.
    let config = GramerConfig::default();
    let pre = preprocess(&graph, &config).unwrap();
    let report = Simulator::new(&pre, config).unwrap().run(&app).unwrap();
    println!("accelerator: {}", report.summary());

    // The frequent patterns (threshold applied over exact occurrence
    // counts, as §II-A defines support).
    let frequent = app.frequent_patterns(&report.result);
    println!("\nfrequent 3-vertex labeled patterns ({}):", frequent.len());
    for (pattern, count) in &frequent {
        println!("  {:>10}  {:?}", count, pattern);
    }

    // Cross-check: DFS and BFS reference engines agree on the counts.
    let dfs = DfsEnumerator::new(&graph).run(&app);
    let (bfs, levels) = BfsEnumerator::new(&graph).run(&app);
    assert_eq!(frequent.len(), app.frequent_patterns(&dfs).len());
    assert_eq!(frequent.len(), app.frequent_patterns(&bfs).len());
    println!("\nverified against DFS and BFS reference engines");
    println!(
        "BFS would have materialised {} intermediate embeddings ({} KiB) — the RStream cost",
        levels.iter().map(|l| l.frontier_len).sum::<u64>(),
        levels.iter().map(|l| l.bytes).sum::<u64>() / 1024
    );
}
