//! Cache explorer: replay the same mining workload through the three
//! on-chip memory organisations of the paper's Fig. 12 and through a λ
//! sweep of the locality-preserved replacement policy (Eq. 2).
//!
//! ```sh
//! cargo run --release --example cache_explorer
//! ```

use gramer_suite::gramer::{preprocess, GramerConfig, MemoryBudget, MemoryMode, Simulator};
use gramer_suite::gramer_graph::generate;
use gramer_suite::gramer_mining::apps::CliqueFinding;

fn main() {
    let graph = generate::chung_lu(4_000, 14_000, 2.3, 17);
    let app = CliqueFinding::new(4).expect("valid k");
    println!(
        "graph: {} vertices, {} edges; 10% of data on-chip; workload 4-CF\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    println!("memory organisations (Fig. 12):");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10}",
        "hierarchy", "v-hit%", "e-hit%", "cycles", "dram"
    );
    for (name, mode) in [
        ("Uniform LRU", MemoryMode::UniformLru),
        ("Static+LRU", MemoryMode::StaticLru),
        ("LAMH", MemoryMode::Lamh),
    ] {
        let config = GramerConfig {
            budget: MemoryBudget::Fraction(0.10),
            memory_mode: mode,
            ..GramerConfig::default()
        };
        let pre = preprocess(&graph, &config).unwrap();
        let r = Simulator::new(&pre, config).unwrap().run(&app).unwrap();
        println!(
            "{:<14} {:>9.2}% {:>9.2}% {:>12} {:>10}",
            name,
            100.0 * r.mem.vertex.on_chip_ratio(),
            100.0 * r.mem.edge.on_chip_ratio(),
            r.cycles,
            r.dram_requests
        );
    }

    println!("\nlambda sweep of the locality-preserved policy (Fig. 14b):");
    println!("{:<8} {:>12} {:>10}", "lambda", "cycles", "hit%");
    for lambda in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let config = GramerConfig {
            budget: MemoryBudget::Fraction(0.10),
            lambda,
            ..GramerConfig::default()
        };
        let pre = preprocess(&graph, &config).unwrap();
        let r = Simulator::new(&pre, config).unwrap().run(&app).unwrap();
        println!(
            "{:<8} {:>12} {:>9.2}%",
            lambda,
            r.cycles,
            100.0 * r.hit_ratio()
        );
    }
}
