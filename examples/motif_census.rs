//! Motif census: count every 3- and 4-vertex pattern of a social-network
//! analog on the accelerator, and print the census with architectural
//! statistics — the workload class the paper's introduction motivates
//! (structure discovery rather than value computation).
//!
//! ```sh
//! cargo run --release --example motif_census
//! ```

use gramer_suite::gramer::{preprocess, GramerConfig, Simulator};
use gramer_suite::gramer_graph::datasets::Dataset;
use gramer_suite::gramer_memsim::EnergyModel;
use gramer_suite::gramer_mining::apps::MotifCounting;

fn main() {
    // A scaled analog of the Astro collaboration network.
    let graph = Dataset::Astro.generate_scaled(16);
    println!(
        "graph: {} analog, {} vertices, {} edges\n",
        Dataset::Astro,
        graph.num_vertices(),
        graph.num_edges()
    );

    let config = GramerConfig::default();
    let pre = preprocess(&graph, &config).unwrap();
    let app = MotifCounting::new(4).expect("4 is a valid motif size");
    let report = Simulator::new(&pre, config).unwrap().run(&app).unwrap();

    println!("motif census:");
    for size in 3..=4 {
        println!(
            "  {size}-vertex motifs ({} total embeddings):",
            report.result.total_at(size)
        );
        let mut rows: Vec<_> = report
            .result
            .counts
            .sorted()
            .into_iter()
            .filter(|&(s, _, _)| s == size)
            .collect();
        rows.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
        for (_, pid, count) in rows {
            let p = report.result.interner.pattern(pid);
            let name = p.common_name().unwrap_or("(unnamed)");
            println!("    {count:>12}  {name:<16} {p:?}");
        }
    }

    println!("\narchitecture:");
    println!("  {}", report.summary());
    println!(
        "  vertex hit {:.2}%, edge hit {:.2}%",
        100.0 * report.mem.vertex.on_chip_ratio(),
        100.0 * report.mem.edge.on_chip_ratio()
    );
    let energy = report.energy(&EnergyModel::default());
    println!(
        "  modeled energy: {:.4} J on-chip ({:.2} uJ dynamic memory, {:.4} J DRAM)",
        energy.on_chip_j,
        1e6 * energy.memory_dynamic_j,
        energy.dram_j
    );
}
