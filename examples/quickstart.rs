//! Quickstart: mine triangles with the GRAMER accelerator simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gramer_suite::gramer::{preprocess, GramerConfig, Simulator};
use gramer_suite::gramer_graph::generate;
use gramer_suite::gramer_mining::{apps::CliqueFinding, DfsEnumerator};

fn main() {
    // 1. A power-law input graph (swap in `gramer_graph::io::read_edge_list_file`
    //    to load a real SNAP edge list).
    let graph = generate::chung_lu(5_000, 20_000, 2.4, 42);
    println!(
        "input: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. GRAMER preprocessing: ON1 ranking + reordering + priority pins.
    let config = GramerConfig::default();
    let pre = preprocess(&graph, &config).unwrap();
    println!(
        "preprocess: tau = {:.1}%, {} vertices and {} edge slots pinned ({:.3} ms modeled)",
        100.0 * pre.tau,
        pre.vertex_pin,
        pre.edge_pin,
        1e3 * pre.preprocess_seconds
    );

    // 3. Simulate 3-clique finding on the accelerator.
    let app = CliqueFinding::new(3).expect("3 is a valid clique size");
    let report = Simulator::new(&pre, config).unwrap().run(&app).unwrap();
    println!("accelerator: {}", report.summary());
    println!(
        "             {:.2}% of requests served on-chip, {} off-chip",
        100.0 * report.hit_ratio(),
        report.dram_requests
    );

    // 4. Cross-check against the software reference engine.
    let reference = DfsEnumerator::new(&graph).run(&app);
    assert_eq!(report.result.total_at(3), reference.total_at(3));
    println!(
        "verified: {} triangles (software reference agrees)",
        report.result.total_at(3)
    );
}
