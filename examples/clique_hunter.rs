//! Clique hunter: sweep clique sizes on a dataset analog and compare the
//! accelerator against the modeled CPU baselines — a miniature of the
//! paper's Table III workflow.
//!
//! ```sh
//! cargo run --release --example clique_hunter
//! ```

use gramer_suite::gramer::{preprocess, GramerConfig, Simulator};
use gramer_suite::gramer_baselines::{profile_on_cpu, FractalModel, RstreamModel};
use gramer_suite::gramer_graph::datasets::Dataset;
use gramer_suite::gramer_mining::apps::CliqueFinding;

fn main() {
    let graph = Dataset::P2p.generate_scaled(2);
    println!(
        "graph: {} analog, {} vertices, {} edges\n",
        Dataset::P2p,
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "k", "cliques", "GRAMER(s)", "Fractal(s)", "RStream", "Fr/Gr", "RS/Gr"
    );

    let config = GramerConfig::default();
    let pre = preprocess(&graph, &config).unwrap();
    let fractal = FractalModel::default();
    let rstream = RstreamModel::default();

    for k in 3..=5 {
        let app = CliqueFinding::new(k).expect("valid k");
        let report = Simulator::new(&pre, config.clone())
            .unwrap()
            .run(&app)
            .unwrap();
        let profile = profile_on_cpu(&graph, &app);
        let fr = fractal.estimate_seconds(&profile);
        let rs = rstream.estimate(&profile);
        let rs_ratio = rs
            .seconds()
            .map(|s| format!("{:7.1}x", s / report.seconds))
            .unwrap_or_else(|| "     n/a".into());
        println!(
            "{:<6} {:>12} {:>12.5} {:>12.4} {:>12} {:>7.1}x {}",
            format!("{k}-CF"),
            report.result.total_at(k),
            report.seconds,
            fr,
            rs.to_string(),
            fr / report.seconds,
            rs_ratio
        );
    }
}
