//! Pattern matching: count the embeddings of user-chosen patterns (the
//! subgraph-matching problem the paper reduces clique finding to, §II-A),
//! with sub-pattern pruning, on the accelerator.
//!
//! ```sh
//! cargo run --release --example pattern_match
//! ```

use gramer_suite::gramer::{preprocess, GramerConfig, Simulator};
use gramer_suite::gramer_graph::{algo, generate};
use gramer_suite::gramer_mining::{apps::SubgraphMatching, Pattern};

fn main() {
    let graph = generate::chung_lu(2_000, 8_000, 2.3, 23);
    println!(
        "graph: {} vertices, {} edges, clustering {:.4}\n",
        graph.num_vertices(),
        graph.num_edges(),
        algo::global_clustering(&graph)
    );

    let config = GramerConfig::default();
    let pre = preprocess(&graph, &config).unwrap();

    println!(
        "{:<26} {:>12} {:>12} {:>10}",
        "pattern", "matches", "candidates", "cycles"
    );
    // Every connected 4-vertex pattern, from sparsest to densest.
    for pattern in Pattern::all_connected(4) {
        let app = match SubgraphMatching::new(pattern) {
            Ok(app) => app,
            Err(e) => {
                eprintln!("skipping {pattern:?}: {e}");
                continue;
            }
        };
        let report = Simulator::new(&pre, config.clone())
            .unwrap()
            .run(&app)
            .unwrap();
        println!(
            "{:<26} {:>12} {:>12} {:>10}",
            format!("{pattern:?}").replace("Pattern", ""),
            app.matches(&report.result),
            report.result.candidates_examined,
            report.cycles
        );
    }

    // Cross-check the triangle through the independent oracle.
    let triangle = Pattern::from_parts(3, &[0; 3], &[0b110, 0b101, 0b011]);
    let app = SubgraphMatching::new(triangle).expect("triangle is connected");
    let report = Simulator::new(&pre, config).unwrap().run(&app).unwrap();
    assert_eq!(
        app.matches(&report.result),
        algo::triangle_count(&graph),
        "matcher disagrees with the intersection oracle"
    );
    println!("\ntriangle count verified against the adjacency-intersection oracle");
}
