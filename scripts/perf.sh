#!/usr/bin/env bash
# Pinned end-to-end simulator-throughput run. Builds the release perf
# bin and writes results/BENCH_core.json (schema documented in
# EXPERIMENTS.md, "Simulator performance trajectory").
#
# Usage: scripts/perf.sh [--quick] [--json PATH]
set -euo pipefail
cd "$(dirname "$0")/.."

GRAMER_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export GRAMER_GIT_REV

cargo build --release -q -p gramer-bench --bin perf
exec ./target/release/perf "$@"
