#!/usr/bin/env bash
# Pinned end-to-end simulator-throughput run. Builds the release perf
# bin and writes results/BENCH_core.json (schema documented in
# EXPERIMENTS.md, "Simulator performance trajectory").
#
# Usage: scripts/perf.sh [--quick] [--json PATH] [--repeats N]
#        scripts/perf.sh --check [--baseline PATH] [--threshold PCT]
#
# --check is the perf regression gate: it measures a fresh run and
# compares it against the committed results/BENCH_core.json instead of
# overwriting it. Simulated quantities must be identical; the total
# median throughput may be at most --threshold percent (default 10)
# below the baseline. Exits non-zero on any violation.
#
# The gate is BLOCKING in CI. On genuinely noisy hardware set
# GRAMER_PERF_GATE=advisory: the check still runs and prints its full
# verdict, but a throughput miss no longer fails the build. Use it for
# one-off noisy runs, not as a standing default — simulated-quantity
# mismatches indicate a semantics bug and are reported either way.
set -euo pipefail
cd "$(dirname "$0")/.."

GRAMER_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export GRAMER_GIT_REV

cargo build --release -q -p gramer-bench --bin perf
if [ "${GRAMER_PERF_GATE:-}" = "advisory" ]; then
    if ./target/release/perf "$@"; then
        exit 0
    fi
    echo "perf gate: check FAILED, but GRAMER_PERF_GATE=advisory — not failing the build" >&2
    exit 0
fi
exec ./target/release/perf "$@"
