#!/usr/bin/env bash
# Pinned end-to-end simulator-throughput run. Builds the release perf
# bin and writes results/BENCH_core.json (schema documented in
# EXPERIMENTS.md, "Simulator performance trajectory").
#
# Usage: scripts/perf.sh [--quick] [--json PATH] [--repeats N]
#        scripts/perf.sh --check [--baseline PATH] [--threshold PCT]
#
# --check is the perf regression gate: it measures a fresh run and
# compares it against the committed results/BENCH_core.json instead of
# overwriting it. Simulated quantities must be identical; the total
# median throughput may be at most --threshold percent (default 10)
# below the baseline. Exits non-zero on any violation.
set -euo pipefail
cd "$(dirname "$0")/.."

GRAMER_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export GRAMER_GIT_REV

cargo build --release -q -p gramer-bench --bin perf
exec ./target/release/perf "$@"
