#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   ./scripts/tier1.sh [stage]
#
# Stages (run in this order by the default `all`; each is also a CI job
# in .github/workflows/ci.yml):
#   fmt     cargo fmt --check              (tree must be rustfmt-clean)
#   build   cargo build --release          (all crates + experiment bins)
#   test    cargo test -q --workspace      (unit + integration + doc tests)
#   golden  golden + telemetry suites x {calendar,heap} x {fast,exact},
#           plus a GRAMER_EPOCH=off pass over the same matrix and a
#           GRAMER_SIM_THREADS=4 sharded-cells pass (scheduler,
#           access-path, epoch engine and cell parallelism are all
#           host-side choices; every cell must match the golden
#           constants bit-for-bit); plus the memo dimension: a
#           GRAMER_MEMO=on golden cell (mining results pinned, timing
#           free to improve) and a gramer-mine --memo off byte-compare
#           against the default run
#   query   query-matrix: the pinned labeled queries of tests/query.rs
#           x {calendar,heap} x {fast,exact}, plus GRAMER_EPOCH=off and
#           GRAMER_MEMO=on legs (filtered match totals and filter-probe
#           counters are pinned across every leg; filtered embeddings
#           must be bit-identical to brute force), plus a gramer-mine
#           --query / gramer-query CLI smoke
#   doc     cargo doc --no-deps            (rustdoc, warnings denied)
#   clippy  clippy on the library crates   (unwrap/expect denied: failures
#           must flow through the typed error taxonomy, not panic; the
#           perf lints warn so hot-path regressions surface in review)
#   bench   cargo bench, smoke mode        (every bench runs its closure
#           exactly once — compiles-and-runs proof, not a measurement)
#   artifact  .gra artifact round-trip on both golden workloads:
#           gramer-artifact build/verify/inspect + gramer-mine --artifact,
#           on the mmap and forced-copy load paths, plus the artifact
#           test suite (see docs/FORMAT.md)
#   serve   gramer-serve daemon end-to-end: both golden workloads over
#           HTTP byte-identical to gramer-mine --json, injected-panic
#           containment, queue-full back-pressure, SIGTERM drain with an
#           intact journal (see docs/DESIGN.md, service architecture)
#   all     every stage above (the default)
set -euo pipefail
cd "$(dirname "$0")/.."

stage_fmt() {
    echo "== tier1: cargo fmt --check"
    cargo fmt --all --check
}

stage_build() {
    echo "== tier1: cargo build --release --workspace"
    cargo build --release --workspace
}

stage_test() {
    echo "== tier1: cargo test -q --workspace"
    cargo test -q --workspace
}

stage_golden() {
    echo "== tier1: golden + telemetry suites under the scheduler x access-path matrix"
    # Both knobs are host-side choices: every cell must reproduce the
    # same golden constants — and the same telemetry document — bit-for-
    # bit (the suites read these env vars).
    local sched path
    for sched in calendar heap; do
        for path in fast exact; do
            echo "   -- scheduler=$sched access-path=$path"
            GRAMER_SCHEDULER="$sched" GRAMER_ACCESS_PATH="$path" \
                cargo test -q --test golden --test telemetry
        done
    done
    # The epoch-batched engine is the default; re-run the full matrix
    # under the reference event-queue interleaving — same constants.
    for sched in calendar heap; do
        for path in fast exact; do
            echo "   -- epoch=off scheduler=$sched access-path=$path"
            GRAMER_EPOCH=off GRAMER_SCHEDULER="$sched" GRAMER_ACCESS_PATH="$path" \
                cargo test -q --test golden --test telemetry
        done
    done
    # Memo dimension: the pair memo is a model change, so its golden cell
    # pins the mining results (timing is free to improve) — the suite
    # branches on GRAMER_MEMO internally.
    echo "   -- memo=on golden cell (results pinned, timing free)"
    GRAMER_MEMO=on cargo test -q --test golden
    # Sharded-cells pass: gramer-mine must produce byte-identical reports
    # with 4 host threads over a multi-app cell list.
    echo "   -- sim-threads=4 sharded cells byte-identity (gramer-mine)"
    cargo build --release -q -p gramer --bin gramer-mine
    local tmp
    tmp="$(mktemp -d)"
    trap 'rm -rf "${tmp:-}"; trap - RETURN' RETURN
    target/release/gramer-mine --demo --app 3-cf,3-mc,4-cf --sim-threads 1 \
        --json "$tmp/serial.json" > "$tmp/serial.out" 2> /dev/null
    GRAMER_SIM_THREADS=4 target/release/gramer-mine --demo --app 3-cf,3-mc,4-cf \
        --json "$tmp/sharded.json" > "$tmp/sharded.out" 2> /dev/null
    cmp "$tmp/serial.json" "$tmp/sharded.json"
    cmp "$tmp/serial.out" "$tmp/sharded.out"
    # `--memo off` is the bit-exact reference path: explicitly passing it
    # must reproduce the default run byte-for-byte (JSON and stdout).
    echo "   -- --memo off byte-identity with the default run (gramer-mine)"
    target/release/gramer-mine --demo --app 3-cf,3-mc,4-cf --memo off \
        --json "$tmp/memo-off.json" > "$tmp/memo-off.out" 2> /dev/null
    cmp "$tmp/serial.json" "$tmp/memo-off.json"
    cmp "$tmp/serial.out" "$tmp/memo-off.out"
}

stage_query() {
    echo "== tier1: query suite under the scheduler x access-path matrix"
    # The candidate filter must be result-identical to brute force, and
    # its probe counters are pinned: both hold bit-for-bit in every leg.
    local sched path
    for sched in calendar heap; do
        for path in fast exact; do
            echo "   -- scheduler=$sched access-path=$path"
            GRAMER_SCHEDULER="$sched" GRAMER_ACCESS_PATH="$path" \
                cargo test -q --test query
        done
    done
    echo "   -- epoch=off leg"
    GRAMER_EPOCH=off cargo test -q --test query
    echo "   -- memo=on leg (filter composes with the pair memo)"
    GRAMER_MEMO=on cargo test -q --test query
    # CLI smoke: both query front ends accept the same spec and the
    # ablation tool's internal brute-vs-filtered identity check passes.
    echo "   -- gramer-mine --query / gramer-query smoke"
    cargo build --release -q -p gramer --bin gramer-mine --bin gramer-query
    target/release/gramer-mine --demo --query "0,0,0:0-1,1-2,2-0" > /dev/null 2> /dev/null
    target/release/gramer-query --gen golden-ba --labels 6:3 \
        --query "1,2,3:0-1,1-2" > /dev/null 2> /dev/null
}

stage_doc() {
    echo "== tier1: cargo doc --no-deps --workspace (warnings denied)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
}

stage_clippy() {
    echo "== tier1: clippy unwrap/expect gate on library crates"
    cargo clippy -q -p gramer -p gramer-graph -p gramer-memsim -p gramer-mining \
        -p gramer-serve --lib -- \
        -D clippy::unwrap_used -D clippy::expect_used \
        -W clippy::needless_collect -W clippy::redundant_clone \
        -W clippy::large_stack_arrays -W clippy::trivially_copy_pass_by_ref \
        -W clippy::large_enum_variant
    # The query ablation bin is part of the documented experiment surface,
    # so it is held to the same no-panic bar as the libraries.
    echo "== tier1: clippy unwrap/expect gate on gramer-query"
    cargo clippy -q -p gramer --bin gramer-query -- \
        -D clippy::unwrap_used -D clippy::expect_used
}

stage_bench() {
    echo "== tier1: bench smoke (GRAMER_BENCH_SMOKE=1, single iteration each)"
    GRAMER_BENCH_SMOKE=1 cargo bench -q -p gramer-bench
}

stage_artifact() {
    echo "== tier1: .gra artifact round-trip (build / verify / inspect / mine)"
    cargo build --release -q -p gramer --bins
    local tmp
    tmp="$(mktemp -d)"
    trap 'rm -rf "${tmp:-}"; trap - RETURN' RETURN
    local w
    for w in golden-ba golden-rmat; do
        echo "   -- $w: build + verify + inspect"
        target/release/gramer-artifact build --gen "$w" -o "$tmp/$w.gra"
        target/release/gramer-artifact verify "$tmp/$w.gra"
        # Forced-copy load path must accept the same file.
        GRAMER_ARTIFACT_NO_MMAP=1 target/release/gramer-artifact verify "$tmp/$w.gra"
        target/release/gramer-artifact inspect "$tmp/$w.gra" > /dev/null
    done
    echo "   -- golden-ba: gramer-mine --artifact (4-clique finding)"
    target/release/gramer-mine --artifact "$tmp/golden-ba.gra" --app 4-cf > /dev/null
    echo "   -- golden-rmat: gramer-mine --artifact (3-motif counting)"
    target/release/gramer-mine --artifact "$tmp/golden-rmat.gra" --app 3-mc > /dev/null
    echo "   -- artifact test suite (round-trip, corruption, pinned digest)"
    cargo test -q --test artifact
}

# Polls for the daemon's --addr-file (atomic publish) instead of racing
# the bind; prints the address on stdout.
wait_addr_file() {
    local file="$1" log="$2" i
    for i in $(seq 1 200); do
        if [ -f "$file" ]; then
            cat "$file"
            return 0
        fi
        sleep 0.05
    done
    echo "tier1 serve: daemon never published $file" >&2
    cat "$log" >&2
    return 1
}

stage_serve() {
    echo "== tier1: gramer-serve daemon (HTTP parity, panic containment, back-pressure, drain)"
    cargo build --release -q -p gramer -p gramer-serve --bins
    local tmp
    tmp="$(mktemp -d)"
    trap 'rm -rf "${tmp:-}"; trap - RETURN' RETURN
    local serve=target/release/gramer-serve
    local mine=target/release/gramer-mine
    local artifact=target/release/gramer-artifact

    # Reference inputs: the two golden workload artifacts, mined directly
    # by the CLI. The daemon must reproduce these bytes exactly.
    "$artifact" build --gen golden-ba -o "$tmp/golden-ba.gra"
    "$artifact" build --gen golden-rmat -o "$tmp/golden-rmat.gra"
    "$mine" --artifact "$tmp/golden-ba.gra" --app 4-cf --json "$tmp/golden-ba.cli.json" > /dev/null
    "$mine" --artifact "$tmp/golden-rmat.gra" --app 3-mc --json "$tmp/golden-rmat.cli.json" > /dev/null

    echo "   -- daemon up (ephemeral port, journal on)"
    "$serve" --addr 127.0.0.1:0 --addr-file "$tmp/addr" --workers 2 \
        --journal "$tmp/jobs.jsonl" 2> "$tmp/daemon.log" &
    local pid=$!
    local addr
    addr="$(wait_addr_file "$tmp/addr" "$tmp/daemon.log")"

    local pair w app id
    for pair in golden-ba:4-cf golden-rmat:3-mc; do
        w="${pair%%:*}"
        app="${pair#*:}"
        echo "   -- $w/$app over HTTP, byte-compared to gramer-mine --json"
        "$serve" client --addr "$addr" submit --artifact "$tmp/$w.gra" --app "$app" --wait \
            > "$tmp/$w.summary.json"
        id="$(grep -o '"id":[[:space:]]*[0-9]*' "$tmp/$w.summary.json" | head -n1 | grep -o '[0-9]*$')"
        "$serve" client --addr "$addr" report "$id" --out "$tmp/$w.served.json"
        cmp "$tmp/$w.served.json" "$tmp/$w.cli.json"
    done

    echo "   -- SIGTERM drains gracefully and leaves the journal intact"
    kill -TERM "$pid"
    if ! wait "$pid"; then
        echo "tier1 serve: daemon did not exit 0 after SIGTERM" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    fi
    [ -s "$tmp/jobs.jsonl" ] || { echo "tier1 serve: journal missing after drain" >&2; exit 1; }
    # Journal lines are compact JSONL; both completed jobs must survive.
    [ "$(grep -c '"status":"completed"' "$tmp/jobs.jsonl")" -eq 2 ] || {
        echo "tier1 serve: journal lost the completed jobs:" >&2
        cat "$tmp/jobs.jsonl" >&2
        exit 1
    }

    echo "   -- injected panic ends in a typed state; daemon survives"
    "$serve" --addr 127.0.0.1:0 --addr-file "$tmp/addr2" --workers 1 \
        --chaos panic=1000,seed=1 --max-retries 0 2>> "$tmp/daemon.log" &
    pid=$!
    addr="$(wait_addr_file "$tmp/addr2" "$tmp/daemon.log")"
    if "$serve" client --addr "$addr" submit --gen ba:120:3:5 --app 3-cf --wait \
        > "$tmp/panic.json"; then
        echo "tier1 serve: a panicked job reported success" >&2
        exit 1
    fi
    grep -q '"status":[[:space:]]*"panicked"' "$tmp/panic.json"
    "$serve" client --addr "$addr" healthz > /dev/null
    "$serve" client --addr "$addr" shutdown > /dev/null
    wait "$pid"

    echo "   -- full queue answers a typed 429"
    "$serve" --addr 127.0.0.1:0 --addr-file "$tmp/addr3" --workers 0 --queue 1 \
        2>> "$tmp/daemon.log" &
    pid=$!
    addr="$(wait_addr_file "$tmp/addr3" "$tmp/daemon.log")"
    "$serve" client --addr "$addr" submit --gen ba:120:3:5 --app 3-cf > /dev/null
    if "$serve" client --addr "$addr" submit --gen ba:120:3:5 --app 3-cf > "$tmp/full.json"; then
        echo "tier1 serve: an over-capacity submission was accepted" >&2
        exit 1
    fi
    grep -q 'queue_full' "$tmp/full.json"
    "$serve" client --addr "$addr" shutdown > /dev/null
    wait "$pid"
    echo "   -- serve stage green"
}

stage_all() {
    stage_fmt
    stage_build
    stage_test
    stage_golden
    stage_query
    stage_doc
    stage_clippy
    stage_bench
    stage_artifact
    stage_serve
    echo "== tier1: all green"
}

stage="${1:-all}"
case "$stage" in
    fmt|build|test|golden|query|doc|clippy|bench|artifact|serve|all)
        "stage_$stage"
        ;;
    *)
        echo "unknown stage: $stage" >&2
        echo "usage: $0 [fmt|build|test|golden|query|doc|clippy|bench|artifact|serve|all]" >&2
        exit 2
        ;;
esac
