#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   ./scripts/tier1.sh
#
# Runs, in order:
#   1. cargo build --release --workspace   (all crates + experiment bins)
#   2. cargo test -q --workspace           (unit + integration + doc tests)
#   3. golden suite x {calendar,heap} x {fast,exact}  (scheduler and
#      access-path are host-side choices; all four cells must match the
#      golden constants bit-for-bit)
#   4. cargo doc --no-deps --workspace     (rustdoc, warnings denied)
#   5. cargo clippy on the library crates  (unwrap/expect denied: failures
#      must flow through the typed error taxonomy, not panic; the perf
#      lints warn so hot-path regressions surface in review)
#   6. cargo bench, smoke mode             (every bench runs its closure
#      exactly once — compiles-and-runs proof, not a measurement)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release --workspace"
cargo build --release --workspace

echo "== tier1: cargo test -q --workspace"
cargo test -q --workspace

echo "== tier1: golden suite under the scheduler x access-path matrix"
# Both knobs are host-side choices: every cell must reproduce the same
# golden constants bit-for-bit (the suite reads these env vars).
for sched in calendar heap; do
    for path in fast exact; do
        echo "   -- scheduler=$sched access-path=$path"
        GRAMER_SCHEDULER="$sched" GRAMER_ACCESS_PATH="$path" \
            cargo test -q --test golden
    done
done

echo "== tier1: cargo doc --no-deps --workspace (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== tier1: clippy unwrap/expect gate on library crates"
cargo clippy -q -p gramer -p gramer-graph -p gramer-memsim -p gramer-mining --lib -- \
    -D clippy::unwrap_used -D clippy::expect_used \
    -W clippy::needless_collect -W clippy::redundant_clone \
    -W clippy::large_stack_arrays -W clippy::trivially_copy_pass_by_ref

echo "== tier1: bench smoke (GRAMER_BENCH_SMOKE=1, single iteration each)"
GRAMER_BENCH_SMOKE=1 cargo bench -q -p gramer-bench

echo "== tier1: all green"
