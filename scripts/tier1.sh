#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   ./scripts/tier1.sh [stage]
#
# Stages (run in this order by the default `all`; each is also a CI job
# in .github/workflows/ci.yml):
#   fmt     cargo fmt --check              (tree must be rustfmt-clean)
#   build   cargo build --release          (all crates + experiment bins)
#   test    cargo test -q --workspace      (unit + integration + doc tests)
#   golden  golden + telemetry suites x {calendar,heap} x {fast,exact}
#           (scheduler and access-path are host-side choices; all four
#           cells must match the golden constants bit-for-bit)
#   doc     cargo doc --no-deps            (rustdoc, warnings denied)
#   clippy  clippy on the library crates   (unwrap/expect denied: failures
#           must flow through the typed error taxonomy, not panic; the
#           perf lints warn so hot-path regressions surface in review)
#   bench   cargo bench, smoke mode        (every bench runs its closure
#           exactly once — compiles-and-runs proof, not a measurement)
#   artifact  .gra artifact round-trip on both golden workloads:
#           gramer-artifact build/verify/inspect + gramer-mine --artifact,
#           on the mmap and forced-copy load paths, plus the artifact
#           test suite (see docs/FORMAT.md)
#   all     every stage above (the default)
set -euo pipefail
cd "$(dirname "$0")/.."

stage_fmt() {
    echo "== tier1: cargo fmt --check"
    cargo fmt --all --check
}

stage_build() {
    echo "== tier1: cargo build --release --workspace"
    cargo build --release --workspace
}

stage_test() {
    echo "== tier1: cargo test -q --workspace"
    cargo test -q --workspace
}

stage_golden() {
    echo "== tier1: golden + telemetry suites under the scheduler x access-path matrix"
    # Both knobs are host-side choices: every cell must reproduce the
    # same golden constants — and the same telemetry document — bit-for-
    # bit (the suites read these env vars).
    local sched path
    for sched in calendar heap; do
        for path in fast exact; do
            echo "   -- scheduler=$sched access-path=$path"
            GRAMER_SCHEDULER="$sched" GRAMER_ACCESS_PATH="$path" \
                cargo test -q --test golden --test telemetry
        done
    done
}

stage_doc() {
    echo "== tier1: cargo doc --no-deps --workspace (warnings denied)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
}

stage_clippy() {
    echo "== tier1: clippy unwrap/expect gate on library crates"
    cargo clippy -q -p gramer -p gramer-graph -p gramer-memsim -p gramer-mining --lib -- \
        -D clippy::unwrap_used -D clippy::expect_used \
        -W clippy::needless_collect -W clippy::redundant_clone \
        -W clippy::large_stack_arrays -W clippy::trivially_copy_pass_by_ref
}

stage_bench() {
    echo "== tier1: bench smoke (GRAMER_BENCH_SMOKE=1, single iteration each)"
    GRAMER_BENCH_SMOKE=1 cargo bench -q -p gramer-bench
}

stage_artifact() {
    echo "== tier1: .gra artifact round-trip (build / verify / inspect / mine)"
    cargo build --release -q -p gramer --bins
    local tmp
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN
    local w
    for w in golden-ba golden-rmat; do
        echo "   -- $w: build + verify + inspect"
        target/release/gramer-artifact build --gen "$w" -o "$tmp/$w.gra"
        target/release/gramer-artifact verify "$tmp/$w.gra"
        # Forced-copy load path must accept the same file.
        GRAMER_ARTIFACT_NO_MMAP=1 target/release/gramer-artifact verify "$tmp/$w.gra"
        target/release/gramer-artifact inspect "$tmp/$w.gra" > /dev/null
    done
    echo "   -- golden-ba: gramer-mine --artifact (4-clique finding)"
    target/release/gramer-mine --artifact "$tmp/golden-ba.gra" --app 4-cf > /dev/null
    echo "   -- golden-rmat: gramer-mine --artifact (3-motif counting)"
    target/release/gramer-mine --artifact "$tmp/golden-rmat.gra" --app 3-mc > /dev/null
    echo "   -- artifact test suite (round-trip, corruption, pinned digest)"
    cargo test -q --test artifact
}

stage_all() {
    stage_fmt
    stage_build
    stage_test
    stage_golden
    stage_doc
    stage_clippy
    stage_bench
    stage_artifact
    echo "== tier1: all green"
}

stage="${1:-all}"
case "$stage" in
    fmt|build|test|golden|doc|clippy|bench|artifact|all)
        "stage_$stage"
        ;;
    *)
        echo "unknown stage: $stage" >&2
        echo "usage: $0 [fmt|build|test|golden|doc|clippy|bench|artifact|all]" >&2
        exit 2
        ;;
esac
