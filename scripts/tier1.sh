#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   ./scripts/tier1.sh [stage]
#
# Stages (run in this order by the default `all`; each is also a CI job
# in .github/workflows/ci.yml):
#   fmt     cargo fmt --check              (tree must be rustfmt-clean)
#   build   cargo build --release          (all crates + experiment bins)
#   test    cargo test -q --workspace      (unit + integration + doc tests)
#   golden  golden + telemetry suites x {calendar,heap} x {fast,exact}
#           (scheduler and access-path are host-side choices; all four
#           cells must match the golden constants bit-for-bit)
#   doc     cargo doc --no-deps            (rustdoc, warnings denied)
#   clippy  clippy on the library crates   (unwrap/expect denied: failures
#           must flow through the typed error taxonomy, not panic; the
#           perf lints warn so hot-path regressions surface in review)
#   bench   cargo bench, smoke mode        (every bench runs its closure
#           exactly once — compiles-and-runs proof, not a measurement)
#   all     every stage above (the default)
set -euo pipefail
cd "$(dirname "$0")/.."

stage_fmt() {
    echo "== tier1: cargo fmt --check"
    cargo fmt --all --check
}

stage_build() {
    echo "== tier1: cargo build --release --workspace"
    cargo build --release --workspace
}

stage_test() {
    echo "== tier1: cargo test -q --workspace"
    cargo test -q --workspace
}

stage_golden() {
    echo "== tier1: golden + telemetry suites under the scheduler x access-path matrix"
    # Both knobs are host-side choices: every cell must reproduce the
    # same golden constants — and the same telemetry document — bit-for-
    # bit (the suites read these env vars).
    local sched path
    for sched in calendar heap; do
        for path in fast exact; do
            echo "   -- scheduler=$sched access-path=$path"
            GRAMER_SCHEDULER="$sched" GRAMER_ACCESS_PATH="$path" \
                cargo test -q --test golden --test telemetry
        done
    done
}

stage_doc() {
    echo "== tier1: cargo doc --no-deps --workspace (warnings denied)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
}

stage_clippy() {
    echo "== tier1: clippy unwrap/expect gate on library crates"
    cargo clippy -q -p gramer -p gramer-graph -p gramer-memsim -p gramer-mining --lib -- \
        -D clippy::unwrap_used -D clippy::expect_used \
        -W clippy::needless_collect -W clippy::redundant_clone \
        -W clippy::large_stack_arrays -W clippy::trivially_copy_pass_by_ref
}

stage_bench() {
    echo "== tier1: bench smoke (GRAMER_BENCH_SMOKE=1, single iteration each)"
    GRAMER_BENCH_SMOKE=1 cargo bench -q -p gramer-bench
}

stage_all() {
    stage_fmt
    stage_build
    stage_test
    stage_golden
    stage_doc
    stage_clippy
    stage_bench
    echo "== tier1: all green"
}

stage="${1:-all}"
case "$stage" in
    fmt|build|test|golden|doc|clippy|bench|all)
        "stage_$stage"
        ;;
    *)
        echo "unknown stage: $stage" >&2
        echo "usage: $0 [fmt|build|test|golden|doc|clippy|bench|all]" >&2
        exit 2
        ;;
esac
