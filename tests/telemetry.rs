//! Telemetry-layer invariants (PR 5 tentpole).
//!
//! Two guarantees are locked here:
//!
//! 1. **Observation is free of side effects** — running with a recording
//!    [`Telemetry`] sink produces a [`RunReport`] bit-identical to an
//!    unobserved run, on every golden workload.
//! 2. **The telemetry document is simulated data** — for a fixed seeded
//!    workload, the JSON document (minus its explicitly host-side
//!    `"host"` section) is byte-stable across the host-side scheduler ×
//!    access-path matrix, exactly like the golden run reports. The
//!    tier-1 matrix (`scripts/tier1.sh golden`) re-runs this suite under
//!    all four `GRAMER_SCHEDULER` × `GRAMER_ACCESS_PATH` cells.
//!
//! As with `tests/golden.rs`: if a simulator change moves the pinned
//! digest, that is a semantics change and the constant must be updated
//! with an explanation in the commit.

use gramer::json::JsonValue;
use gramer::telemetry::{Telemetry, TelemetryConfig};
use gramer::{preprocess, GramerConfig, RunReport, Simulator};
use gramer_graph::generate::{self, RmatParams};
use gramer_graph::CsrGraph;
use gramer_mining::apps::{CliqueFinding, MotifCounting};
use gramer_mining::EcmApp;

/// Same env-driven matrix hook as `tests/golden.rs`.
fn base_config() -> GramerConfig {
    let mut cfg = GramerConfig::default();
    if let Ok(s) = std::env::var("GRAMER_SCHEDULER") {
        cfg.scheduler = s.parse().expect("GRAMER_SCHEDULER must be calendar|heap");
    }
    if let Ok(s) = std::env::var("GRAMER_ACCESS_PATH") {
        cfg.access_path = s.parse().expect("GRAMER_ACCESS_PATH must be fast|exact");
    }
    if let Ok(s) = std::env::var("GRAMER_EPOCH") {
        cfg.epoch = s.parse().expect("GRAMER_EPOCH must be on|off");
    }
    cfg
}

fn ba_graph() -> CsrGraph {
    generate::barabasi_albert(200, 3, 11)
}

fn rmat_graph() -> CsrGraph {
    generate::rmat(
        8,
        2_000,
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        },
        7,
    )
}

fn run_both<A: EcmApp>(
    graph: &CsrGraph,
    app: &A,
    cfg: &GramerConfig,
) -> (RunReport, RunReport, Telemetry) {
    let pre = preprocess(graph, cfg).unwrap();
    let sim = Simulator::new(&pre, cfg.clone()).unwrap();
    let plain = sim.run(app).unwrap();
    let mut tel = Telemetry::new(TelemetryConfig::default());
    let observed = sim.run_telemetry(app, &mut tel).unwrap();
    (plain, observed, tel)
}

/// Every simulated quantity of a report, as one comparable string
/// (wall-clock-derived fields excluded — they are host-side).
fn semantic_view(r: &RunReport) -> String {
    format!(
        "cycles={} steals={} steps={} dram={} embeddings={} candidates={} \
         accepted_by_size={:?} candidates_by_size={:?} pu_steps={:?} pu_finish={:?} \
         mem={:?} counts={:?}",
        r.cycles,
        r.steals,
        r.steps,
        r.dram_requests,
        r.result.embeddings,
        r.result.candidates_examined,
        r.result.accepted_by_size,
        r.result.candidates_by_size,
        r.pu_steps,
        r.pu_finish,
        r.mem,
        r.result.counts,
    )
}

/// Recording telemetry must not change any simulated quantity, under
/// any cell of the scheduler × access-path matrix.
#[test]
fn telemetry_never_perturbs_the_simulation() {
    let cfg = base_config();

    let (plain, observed, _) = run_both(&ba_graph(), &CliqueFinding::new(4).unwrap(), &cfg);
    assert_eq!(
        semantic_view(&plain),
        semantic_view(&observed),
        "BA(200,3) x CF(4): telemetry perturbed the simulation"
    );

    let (plain, observed, _) = run_both(&rmat_graph(), &MotifCounting::new(3).unwrap(), &cfg);
    assert_eq!(
        semantic_view(&plain),
        semantic_view(&observed),
        "R-MAT(2^8) x MC(3): telemetry perturbed the simulation"
    );
}

/// Removes the top-level `"host"` section — the only part of the
/// document that is allowed to depend on host-side choices (fast-lane
/// tallies vary with `--access-path`).
fn strip_host(doc: JsonValue) -> JsonValue {
    match doc {
        JsonValue::Object(pairs) => {
            JsonValue::Object(pairs.into_iter().filter(|(k, _)| k != "host").collect())
        }
        other => other,
    }
}

/// FNV-1a, so the golden constant stays one line instead of a full
/// multi-kilobyte document dump.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Digest of the simulated portion of the telemetry document for
/// BA(200,3) × CF(4) at the default window width. Must hold under all
/// four scheduler × access-path cells.
///
/// Updated for schema v2 (PR 9): the document gained the memo counters
/// (`memo_hits`/`memo_misses`/`memo_evictions`), the adaptive-policy
/// counters (`lambda_retunes`/`repins`) and the `lambda_last`/
/// `pin_epochs` gauges. This run uses the default config (memo off,
/// autotuning off), so every new field is zero — the simulated
/// quantities themselves are unchanged, as the untouched
/// cycles/steps/dram spot constants below prove.
const GOLDEN_BA_CF4_TELEMETRY_FNV: u64 = 10654693259273357294;
/// Spot constants guarding the digest against blind updates: they tie
/// the document to the `tests/golden.rs` numbers for the same workload.
const GOLDEN_BA_CF4_CYCLES: u64 = 25565;
const GOLDEN_BA_CF4_STEPS: u64 = 30891;
const GOLDEN_BA_CF4_DRAM: u64 = 249;

#[test]
fn telemetry_document_is_byte_stable_across_host_choices() {
    let (_, observed, tel) = run_both(&ba_graph(), &CliqueFinding::new(4).unwrap(), &base_config());
    let doc = strip_host(tel.to_json_value());
    let text = doc.to_string_pretty();

    // The document and the report agree on the headline quantities.
    assert_eq!(
        doc.get("cycles").and_then(JsonValue::as_u64),
        Some(GOLDEN_BA_CF4_CYCLES)
    );
    assert_eq!(observed.cycles, GOLDEN_BA_CF4_CYCLES);
    let totals = doc.get("totals").expect("document has totals");
    assert_eq!(
        totals.get("steps").and_then(JsonValue::as_u64),
        Some(GOLDEN_BA_CF4_STEPS)
    );
    assert_eq!(
        totals.get("dram_requests").and_then(JsonValue::as_u64),
        Some(GOLDEN_BA_CF4_DRAM)
    );
    assert_eq!(
        doc.get("schema_version").and_then(JsonValue::as_u64),
        Some(2)
    );
    assert!(
        doc.get("host").is_none(),
        "host section must be stripped before hashing"
    );

    // The serialized document itself round-trips and is byte-stable.
    assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    assert_eq!(
        fnv1a(text.as_bytes()),
        GOLDEN_BA_CF4_TELEMETRY_FNV,
        "telemetry document drifted; if the simulator semantics \
         legitimately changed, update the digest and say why"
    );
}

/// The full document (host section included) must at least be
/// self-consistent: window sums equal the run totals.
#[test]
fn telemetry_windows_sum_to_totals() {
    let (_, observed, tel) = run_both(&ba_graph(), &CliqueFinding::new(4).unwrap(), &base_config());
    let doc = tel.to_json_value();
    let windows = match doc.get("windows") {
        Some(JsonValue::Array(w)) => w.clone(),
        other => panic!("windows missing: {other:?}"),
    };
    let sum = |key: &str| -> u64 {
        windows
            .iter()
            .filter_map(|w| w.get(key).and_then(JsonValue::as_u64))
            .sum()
    };
    let pu_sum = |key: &str| -> u64 {
        windows
            .iter()
            .filter_map(|w| match w.get(key) {
                Some(JsonValue::Array(a)) => {
                    Some(a.iter().filter_map(JsonValue::as_u64).sum::<u64>())
                }
                _ => None,
            })
            .sum()
    };
    assert_eq!(pu_sum("pu_steps"), observed.steps);
    assert_eq!(sum("steals"), observed.steals);
    assert_eq!(sum("dram_requests"), observed.dram_requests);
    assert_eq!(
        sum("candidates") + sum("rejected"),
        observed.result.candidates_examined
    );
    let totals = doc.get("totals").unwrap();
    assert_eq!(
        totals.get("steps").and_then(JsonValue::as_u64),
        Some(observed.steps)
    );
    assert_eq!(
        totals.get("steals").and_then(JsonValue::as_u64),
        Some(observed.steals)
    );
}

/// The same sums-to-totals invariant under a window configuration small
/// enough to force coalescing mid-run. Regression test: the close-time
/// sampling in `advance_to` used to *assign* the cumulative-counter
/// deltas, silently dropping whatever a coalesce had merged into the
/// open window, so windowed dram/mem/eviction sums undercounted the run
/// totals on any run long enough to coalesce.
#[test]
fn telemetry_windows_sum_to_totals_with_coalescing() {
    let cfg = base_config();
    let pre = preprocess(&ba_graph(), &cfg).unwrap();
    let sim = Simulator::new(&pre, cfg).unwrap();
    let app = CliqueFinding::new(4).unwrap();
    let mut tel = Telemetry::new(TelemetryConfig {
        window_cycles: 64,
        max_windows: 8,
    });
    let observed = sim.run_telemetry(&app, &mut tel).unwrap();
    assert!(
        tel.coalesce_count() > 0,
        "config must force coalescing for this test to bite"
    );

    let doc = tel.to_json_value();
    let windows = match doc.get("windows") {
        Some(JsonValue::Array(w)) => w.clone(),
        other => panic!("windows missing: {other:?}"),
    };
    let sum = |key: &str| -> u64 {
        windows
            .iter()
            .filter_map(|w| w.get(key).and_then(JsonValue::as_u64))
            .sum()
    };
    let pu_sum = |key: &str| -> u64 {
        windows
            .iter()
            .filter_map(|w| match w.get(key) {
                Some(JsonValue::Array(a)) => {
                    Some(a.iter().filter_map(JsonValue::as_u64).sum::<u64>())
                }
                _ => None,
            })
            .sum()
    };
    let kind_sum = |kind: &str, field: &str| -> u64 {
        windows
            .iter()
            .filter_map(|w| {
                w.get(kind)
                    .and_then(|k| k.get(field))
                    .and_then(JsonValue::as_u64)
            })
            .sum()
    };

    assert_eq!(pu_sum("pu_steps"), observed.steps);
    assert_eq!(sum("steals"), observed.steals);
    assert_eq!(sum("dram_requests"), observed.dram_requests);
    assert_eq!(
        kind_sum("vertex", "high_priority_hits"),
        observed.mem.vertex.high_priority_hits
    );
    assert_eq!(
        kind_sum("vertex", "cache_hits"),
        observed.mem.vertex.cache_hits
    );
    assert_eq!(kind_sum("vertex", "misses"), observed.mem.vertex.misses);
    assert_eq!(
        kind_sum("edge", "high_priority_hits"),
        observed.mem.edge.high_priority_hits
    );
    assert_eq!(kind_sum("edge", "cache_hits"), observed.mem.edge.cache_hits);
    assert_eq!(kind_sum("edge", "misses"), observed.mem.edge.misses);

    // The totals section agrees with the report too.
    let totals = doc.get("totals").unwrap();
    assert_eq!(
        totals.get("dram_requests").and_then(JsonValue::as_u64),
        Some(observed.dram_requests)
    );
    assert_eq!(
        totals
            .get("vertex")
            .and_then(|v| v.get("misses"))
            .and_then(JsonValue::as_u64),
        Some(observed.mem.vertex.misses)
    );
}

/// Schema v2: a memoized run's probes land in the telemetry document
/// (per-window counters summing to the totals, totals agreeing with the
/// run report) and never perturb the simulation relative to an
/// unobserved memoized run.
#[test]
fn telemetry_records_memo_counters() {
    let mut cfg = base_config();
    cfg.memo = gramer::MemoMode::On { bytes: 1 << 16 };
    let (plain, observed, tel) = run_both(&ba_graph(), &CliqueFinding::new(4).unwrap(), &cfg);
    assert_eq!(
        semantic_view(&plain),
        semantic_view(&observed),
        "telemetry perturbed the memoized simulation"
    );
    let stats = observed.memo.expect("memoized run must report memo stats");
    assert!(stats.hits > 0, "workload never hit the memo");

    let doc = tel.to_json_value();
    let totals = doc.get("totals").expect("document has totals");
    assert_eq!(
        totals.get("memo_hits").and_then(JsonValue::as_u64),
        Some(stats.hits)
    );
    assert_eq!(
        totals.get("memo_misses").and_then(JsonValue::as_u64),
        Some(stats.misses)
    );
    assert_eq!(
        totals.get("memo_evictions").and_then(JsonValue::as_u64),
        Some(stats.evictions)
    );
    let windows = match doc.get("windows") {
        Some(JsonValue::Array(w)) => w.clone(),
        other => panic!("windows missing: {other:?}"),
    };
    let sum = |key: &str| -> u64 {
        windows
            .iter()
            .filter_map(|w| w.get(key).and_then(JsonValue::as_u64))
            .sum()
    };
    assert_eq!(sum("memo_hits"), stats.hits);
    assert_eq!(sum("memo_misses"), stats.misses);
}
