//! Property-based tests (proptest) over the core invariants listed in
//! DESIGN.md §4.

use gramer_suite::gramer_graph::{generate, io, on1, reorder, GraphBuilder, VertexId};
use gramer_suite::gramer_memsim::policy::PolicyKind;
use gramer_suite::gramer_memsim::SetAssociativeCache;
use gramer_suite::gramer_mining::apps::MotifCounting;
use gramer_suite::gramer_mining::{DfsEnumerator, Explorer, NullObserver, Step};
use proptest::prelude::*;

/// Strategy: a random connected-ish edge list over up to `n` vertices.
fn edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 1..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrips_through_edge_list(es in edges(24, 60)) {
        let mut b = GraphBuilder::new();
        b.add_edges(es.iter().copied());
        if let Ok(g) = b.build() {
            let mut buf = Vec::new();
            io::write_edge_list(&g, &mut buf).expect("write");
            if g.num_edges() > 0 {
                let g2 = io::read_edge_list(buf.as_slice()).expect("read");
                prop_assert_eq!(g.num_edges(), g2.num_edges());
                for v in g2.vertices() {
                    for &u in g2.neighbors(v) {
                        prop_assert!(g.has_edge(v, u));
                    }
                }
            }
        }
    }

    #[test]
    fn reordering_is_a_degree_preserving_permutation(es in edges(30, 80)) {
        let mut b = GraphBuilder::new();
        b.add_edges(es.iter().copied());
        if let Ok(g) = b.build() {
            let r = reorder::reorder_by_on1(&g);
            prop_assert_eq!(g.num_vertices(), r.graph.num_vertices());
            prop_assert_eq!(g.num_edges(), r.graph.num_edges());
            let mut seen = vec![false; g.num_vertices()];
            for v in g.vertices() {
                let nv = r.to_new(v);
                prop_assert!(!seen[nv as usize]);
                seen[nv as usize] = true;
                prop_assert_eq!(g.degree(v), r.graph.degree(nv));
                prop_assert_eq!(r.to_old(nv), v);
            }
        }
    }

    #[test]
    fn mining_counts_invariant_under_relabeling(es in edges(20, 50), seed in 0u64..1000) {
        let mut b = GraphBuilder::new();
        b.add_edges(es.iter().copied());
        if let Ok(g) = b.build() {
            let app = MotifCounting::new(4).expect("valid");
            let before = DfsEnumerator::new(&g).run(&app);
            // Random permutation derived from the seed.
            let n = g.num_vertices();
            let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
            let mut state = seed.wrapping_add(1);
            for i in (1..n).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                perm.swap(i, (state % (i as u64 + 1)) as usize);
            }
            let relabeled = reorder::apply_permutation(&g, &perm).graph;
            let after = DfsEnumerator::new(&relabeled).run(&app);
            prop_assert_eq!(before.total_at(3), after.total_at(3));
            prop_assert_eq!(before.total_at(4), after.total_at(4));
            prop_assert_eq!(
                before.count_where(3, |p| p.is_clique()),
                after.count_where(3, |p| p.is_clique())
            );
        }
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        items in prop::collection::vec(0u64..500, 1..400),
        ways in 1usize..5,
        sets in 1usize..9,
    ) {
        let mut cache = SetAssociativeCache::new(sets, ways, 0, PolicyKind::default());
        for &item in &items {
            cache.access(item, item as u32);
            prop_assert!(cache.resident_lines() <= sets * ways);
        }
    }

    #[test]
    fn locality_policy_with_huge_lambda_equals_lru(
        items in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut lru = SetAssociativeCache::new(2, 4, 0, PolicyKind::Lru);
        let mut loc = SetAssociativeCache::new(
            2,
            4,
            0,
            PolicyKind::LocalityPreserved { lambda: 1e15 },
        );
        for &item in &items {
            let a = lru.access(item, item as u32);
            let b = loc.access(item, item as u32);
            prop_assert_eq!(a, b, "diverged on item {}", item);
        }
    }

    #[test]
    fn on1_ranks_are_a_permutation(es in edges(40, 100)) {
        let mut b = GraphBuilder::new();
        b.add_edges(es.iter().copied());
        if let Ok(g) = b.build() {
            let ranks = on1::on1_scores(&g).ranks();
            let mut seen = vec![false; ranks.len()];
            for &r in &ranks {
                prop_assert!(!seen[r as usize]);
                seen[r as usize] = true;
            }
        }
    }

    #[test]
    fn explorer_split_conserves_embeddings(es in edges(18, 40), cut in 1usize..30) {
        let mut b = GraphBuilder::new();
        b.add_edges(es.iter().copied());
        if let Ok(g) = b.build() {
            let count_all = |graph: &gramer_suite::gramer_graph::CsrGraph| {
                let app = MotifCounting::new(4).expect("valid");
                DfsEnumerator::new(graph).run(&app).embeddings
            };
            let expected = count_all(&g);

            // Run with a split injected after `cut` steps on every root.
            let mut total = 0u64;
            let mut obs = NullObserver;
            for root in g.vertices() {
                let mut pool = vec![Explorer::new(&g, root)];
                let mut steps = 0usize;
                while let Some(mut ex) = pool.pop() {
                    loop {
                        match ex.step(&mut obs) {
                            Step::Candidate => {
                                total += 1;
                                if ex.embedding().len() < 4 {
                                    ex.descend();
                                } else {
                                    ex.retract();
                                }
                            }
                            Step::Done => break,
                            _ => {}
                        }
                        steps += 1;
                        if steps % cut == 0 {
                            if let Some(thief) = ex.split() {
                                pool.push(thief);
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(total, expected);
        }
    }
}

#[test]
fn generators_are_power_law_where_promised() {
    use gramer_suite::gramer_graph::stats::degree_stats;
    let cl = degree_stats(&generate::chung_lu(3000, 9000, 2.2, 1));
    let er = degree_stats(&generate::erdos_renyi(3000, 9000, 1));
    assert!(cl.gini > er.gini + 0.2);
}
