//! Randomized property tests over the core invariants listed in
//! DESIGN.md §4.
//!
//! Historically these used `proptest`; the offline build environment
//! cannot fetch it, so the same properties now run over seeded random
//! inputs drawn from the workspace's deterministic `rand` shim. Every
//! case is reproducible: a failure message includes the case seed.

use gramer_suite::gramer_graph::{generate, io, on1, reorder, GraphBuilder, VertexId};
use gramer_suite::gramer_memsim::policy::PolicyKind;
use gramer_suite::gramer_memsim::SetAssociativeCache;
use gramer_suite::gramer_mining::apps::MotifCounting;
use gramer_suite::gramer_mining::{DfsEnumerator, Explorer, NullObserver, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases per property (proptest ran 64; these loops are cheap enough to
/// keep that).
const CASES: u64 = 64;

/// A random edge list over up to `n` vertices with 1..max_edges entries.
fn random_edges(rng: &mut StdRng, n: u32, max_edges: usize) -> Vec<(u32, u32)> {
    let count = rng.gen_range(1..max_edges);
    (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect()
}

/// Builds a graph from a random edge list, or `None` when every edge was
/// a self-loop (the builder rejects empty graphs).
fn random_graph(rng: &mut StdRng, n: u32, max_edges: usize) -> Option<gramer_suite::gramer_graph::CsrGraph> {
    let mut b = GraphBuilder::new();
    b.add_edges(random_edges(rng, n, max_edges));
    b.build().ok()
}

#[test]
fn csr_roundtrips_through_edge_list() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(g) = random_graph(&mut rng, 24, 60) else {
            continue;
        };
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).expect("write");
        if g.num_edges() == 0 {
            continue;
        }
        let g2 = io::read_edge_list(buf.as_slice()).expect("read");
        assert_eq!(g.num_edges(), g2.num_edges(), "seed {seed}");
        for v in g2.vertices() {
            for &u in g2.neighbors(v) {
                assert!(g.has_edge(v, u), "seed {seed}: phantom edge {v}-{u}");
            }
        }
    }
}

#[test]
fn reordering_is_a_degree_preserving_permutation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let Some(g) = random_graph(&mut rng, 30, 80) else {
            continue;
        };
        let r = reorder::reorder_by_on1(&g);
        assert_eq!(g.num_vertices(), r.graph.num_vertices(), "seed {seed}");
        assert_eq!(g.num_edges(), r.graph.num_edges(), "seed {seed}");
        let mut seen = vec![false; g.num_vertices()];
        for v in g.vertices() {
            let nv = r.to_new(v);
            assert!(!seen[nv as usize], "seed {seed}: rank {nv} duplicated");
            seen[nv as usize] = true;
            assert_eq!(g.degree(v), r.graph.degree(nv), "seed {seed}");
            assert_eq!(r.to_old(nv), v, "seed {seed}");
        }
    }
}

#[test]
fn mining_counts_invariant_under_relabeling() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let Some(g) = random_graph(&mut rng, 20, 50) else {
            continue;
        };
        let app = MotifCounting::new(4).expect("valid");
        let before = DfsEnumerator::new(&g).run(&app);
        // Fisher–Yates permutation derived from the case seed.
        let n = g.num_vertices();
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        let relabeled = reorder::apply_permutation(&g, &perm).graph;
        let after = DfsEnumerator::new(&relabeled).run(&app);
        assert_eq!(before.total_at(3), after.total_at(3), "seed {seed}");
        assert_eq!(before.total_at(4), after.total_at(4), "seed {seed}");
        assert_eq!(
            before.count_where(3, |p| p.is_clique()),
            after.count_where(3, |p| p.is_clique()),
            "seed {seed}"
        );
    }
}

#[test]
fn cache_occupancy_never_exceeds_capacity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let ways = rng.gen_range(1usize..5);
        let sets = rng.gen_range(1usize..9);
        let len = rng.gen_range(1usize..400);
        let mut cache = SetAssociativeCache::new(sets, ways, 0, PolicyKind::default());
        for _ in 0..len {
            let item = rng.gen_range(0u64..500);
            cache.access(item, item as u32);
            assert!(
                cache.resident_lines() <= sets * ways,
                "seed {seed}: occupancy exceeded {sets}x{ways}"
            );
        }
    }
}

#[test]
fn locality_policy_with_huge_lambda_equals_lru() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let len = rng.gen_range(1usize..300);
        let mut lru = SetAssociativeCache::new(2, 4, 0, PolicyKind::Lru);
        let mut loc =
            SetAssociativeCache::new(2, 4, 0, PolicyKind::LocalityPreserved { lambda: 1e15 });
        for _ in 0..len {
            let item = rng.gen_range(0u64..64);
            let a = lru.access(item, item as u32);
            let b = loc.access(item, item as u32);
            assert_eq!(a, b, "seed {seed}: diverged on item {item}");
        }
    }
}

#[test]
fn on1_ranks_are_a_permutation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5000 + seed);
        let Some(g) = random_graph(&mut rng, 40, 100) else {
            continue;
        };
        let ranks = on1::on1_scores(&g).ranks();
        let mut seen = vec![false; ranks.len()];
        for &r in &ranks {
            assert!(!seen[r as usize], "seed {seed}: rank {r} duplicated");
            seen[r as usize] = true;
        }
    }
}

#[test]
fn explorer_split_conserves_embeddings() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6000 + seed);
        let Some(g) = random_graph(&mut rng, 18, 40) else {
            continue;
        };
        let cut = rng.gen_range(1usize..30);
        let expected = {
            let app = MotifCounting::new(4).expect("valid");
            DfsEnumerator::new(&g).run(&app).embeddings
        };

        // Run with a split injected after `cut` steps on every root.
        let mut total = 0u64;
        let mut obs = NullObserver;
        for root in g.vertices() {
            let mut pool = vec![Explorer::new(&g, root)];
            let mut steps = 0usize;
            while let Some(mut ex) = pool.pop() {
                loop {
                    match ex.step(&mut obs) {
                        Step::Candidate => {
                            total += 1;
                            if ex.embedding().len() < 4 {
                                ex.descend();
                            } else {
                                ex.retract();
                            }
                        }
                        Step::Done => break,
                        _ => {}
                    }
                    steps += 1;
                    if steps % cut == 0 {
                        if let Some(thief) = ex.split() {
                            pool.push(thief);
                        }
                    }
                }
            }
        }
        assert_eq!(total, expected, "seed {seed} cut {cut}");
    }
}

#[test]
fn generators_are_power_law_where_promised() {
    use gramer_suite::gramer_graph::stats::degree_stats;
    let cl = degree_stats(&generate::chung_lu(3000, 9000, 2.2, 1));
    let er = degree_stats(&generate::erdos_renyi(3000, 9000, 1));
    assert!(cl.gini > er.gini + 0.2);
}
