//! Randomized property tests over the core invariants listed in
//! DESIGN.md §4.
//!
//! Historically these used `proptest`; the offline build environment
//! cannot fetch it, so the same properties now run over seeded random
//! inputs drawn from the workspace's deterministic `rand` shim. Every
//! case is reproducible: a failure message includes the case seed.

use gramer_suite::gramer::{
    preprocess, AccessPath, EpochMode, GramerConfig, MemoMode, MemoryBudget, Scheduler, Simulator,
};
use gramer_suite::gramer_graph::{generate, io, on1, reorder, GraphBuilder, VertexId};
use gramer_suite::gramer_memsim::policy::PolicyKind;
use gramer_suite::gramer_memsim::{
    DataKind, HybridConfig, LatencyConfig, MemorySubsystem, SetAssociativeCache, SubsystemConfig,
};
use gramer_suite::gramer_mining::apps::MotifCounting;
use gramer_suite::gramer_mining::{DfsEnumerator, Explorer, NullObserver, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Cases per property (proptest ran 64; these loops are cheap enough to
/// keep that).
const CASES: u64 = 64;

/// A random edge list over up to `n` vertices with 1..max_edges entries.
fn random_edges(rng: &mut StdRng, n: u32, max_edges: usize) -> Vec<(u32, u32)> {
    let count = rng.gen_range(1..max_edges);
    (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect()
}

/// Builds a graph from a random edge list, or `None` when every edge was
/// a self-loop (the builder rejects empty graphs).
fn random_graph(
    rng: &mut StdRng,
    n: u32,
    max_edges: usize,
) -> Option<gramer_suite::gramer_graph::CsrGraph> {
    let mut b = GraphBuilder::new();
    b.add_edges(random_edges(rng, n, max_edges));
    b.build().ok()
}

#[test]
fn csr_roundtrips_through_edge_list() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(g) = random_graph(&mut rng, 24, 60) else {
            continue;
        };
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).expect("write");
        if g.num_edges() == 0 {
            continue;
        }
        let g2 = io::read_edge_list(buf.as_slice()).expect("read");
        assert_eq!(g.num_edges(), g2.num_edges(), "seed {seed}");
        for v in g2.vertices() {
            for &u in g2.neighbors(v) {
                assert!(g.has_edge(v, u), "seed {seed}: phantom edge {v}-{u}");
            }
        }
    }
}

#[test]
fn reordering_is_a_degree_preserving_permutation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let Some(g) = random_graph(&mut rng, 30, 80) else {
            continue;
        };
        let r = reorder::reorder_by_on1(&g);
        assert_eq!(g.num_vertices(), r.graph.num_vertices(), "seed {seed}");
        assert_eq!(g.num_edges(), r.graph.num_edges(), "seed {seed}");
        let mut seen = vec![false; g.num_vertices()];
        for v in g.vertices() {
            let nv = r.to_new(v);
            assert!(!seen[nv as usize], "seed {seed}: rank {nv} duplicated");
            seen[nv as usize] = true;
            assert_eq!(g.degree(v), r.graph.degree(nv), "seed {seed}");
            assert_eq!(r.to_old(nv), v, "seed {seed}");
        }
    }
}

#[test]
fn mining_counts_invariant_under_relabeling() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let Some(g) = random_graph(&mut rng, 20, 50) else {
            continue;
        };
        let app = MotifCounting::new(4).expect("valid");
        let before = DfsEnumerator::new(&g).run(&app);
        // Fisher–Yates permutation derived from the case seed.
        let n = g.num_vertices();
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        let relabeled = reorder::apply_permutation(&g, &perm).graph;
        let after = DfsEnumerator::new(&relabeled).run(&app);
        assert_eq!(before.total_at(3), after.total_at(3), "seed {seed}");
        assert_eq!(before.total_at(4), after.total_at(4), "seed {seed}");
        assert_eq!(
            before.count_where(3, |p| p.is_clique()),
            after.count_where(3, |p| p.is_clique()),
            "seed {seed}"
        );
    }
}

#[test]
fn cache_occupancy_never_exceeds_capacity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let ways = rng.gen_range(1usize..5);
        let sets = rng.gen_range(1usize..9);
        let len = rng.gen_range(1usize..400);
        let mut cache = SetAssociativeCache::new(sets, ways, 0, PolicyKind::default());
        for _ in 0..len {
            let item = rng.gen_range(0u64..500);
            cache.access(item, item as u32);
            assert!(
                cache.resident_lines() <= sets * ways,
                "seed {seed}: occupancy exceeded {sets}x{ways}"
            );
        }
    }
}

#[test]
fn locality_policy_with_huge_lambda_equals_lru() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let len = rng.gen_range(1usize..300);
        let mut lru = SetAssociativeCache::new(2, 4, 0, PolicyKind::Lru);
        let mut loc =
            SetAssociativeCache::new(2, 4, 0, PolicyKind::LocalityPreserved { lambda: 1e15 });
        for _ in 0..len {
            let item = rng.gen_range(0u64..64);
            let a = lru.access(item, item as u32);
            let b = loc.access(item, item as u32);
            assert_eq!(a, b, "seed {seed}: diverged on item {item}");
        }
    }
}

#[test]
fn on1_ranks_are_a_permutation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5000 + seed);
        let Some(g) = random_graph(&mut rng, 40, 100) else {
            continue;
        };
        let ranks = on1::on1_scores(&g).ranks();
        let mut seen = vec![false; ranks.len()];
        for &r in &ranks {
            assert!(!seen[r as usize], "seed {seed}: rank {r} duplicated");
            seen[r as usize] = true;
        }
    }
}

#[test]
fn explorer_split_conserves_embeddings() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6000 + seed);
        let Some(g) = random_graph(&mut rng, 18, 40) else {
            continue;
        };
        let cut = rng.gen_range(1usize..30);
        let expected = {
            let app = MotifCounting::new(4).expect("valid");
            DfsEnumerator::new(&g).run(&app).embeddings
        };

        // Run with a split injected after `cut` steps on every root.
        let mut total = 0u64;
        let mut obs = NullObserver;
        for root in g.vertices() {
            let mut pool = vec![Explorer::new(&g, root)];
            let mut steps = 0usize;
            while let Some(mut ex) = pool.pop() {
                loop {
                    match ex.step(&mut obs) {
                        Step::Candidate => {
                            total += 1;
                            if ex.embedding().len() < 4 {
                                ex.descend();
                            } else {
                                ex.retract();
                            }
                        }
                        Step::Done => break,
                        _ => {}
                    }
                    steps += 1;
                    if steps % cut == 0 {
                        if let Some(thief) = ex.split() {
                            pool.push(thief);
                        }
                    }
                }
            }
        }
        assert_eq!(total, expected, "seed {seed} cut {cut}");
    }
}

/// Random pinned-membership mask over `n` items. Shape 0 pins nothing,
/// shape 1 pins a prefix (the post-reorder layout the fast lane
/// recognises), shape 2 pins a scatter (a non-prefix set, which disarms
/// the fast lane entirely — a 100%-fallback degenerate).
fn random_pin_mask(rng: &mut StdRng, n: usize) -> Arc<Vec<bool>> {
    match rng.gen_range(0u32..3) {
        0 => Arc::new(vec![false; n]),
        1 => {
            let k = rng.gen_range(0..n + 1);
            Arc::new((0..n).map(|i| i < k).collect())
        }
        _ => Arc::new((0..n).map(|_| rng.gen_range(0u32..2) == 1).collect()),
    }
}

/// A random `SubsystemConfig` spanning the fast-lane fallback boundary:
/// tiny scratchpad/cache latencies, `port_occupancy > 1`, FIFO depth 1
/// and single-ported banks are all drawn with real probability.
fn random_subsystem_config(rng: &mut StdRng) -> SubsystemConfig {
    let policy = PolicyKind::default();
    let hybrid = |rng: &mut StdRng, n: usize| HybridConfig {
        pinned: random_pin_mask(rng, n),
        sets: rng.gen_range(1usize..5),
        ways: rng.gen_range(1usize..5),
        block_bits: rng.gen_range(0u32..3),
        policy,
    };
    SubsystemConfig {
        partitions: 1 << rng.gen_range(0u32..4),
        vertex: hybrid(rng, 64),
        edge: hybrid(rng, 128),
        vertex_route_bits: 0,
        edge_route_bits: rng.gen_range(0u32..3),
        next_line_prefetch: rng.gen_range(0u32..2) == 1,
        latency: LatencyConfig {
            scratchpad_cycles: rng.gen_range(1u64..4),
            cache_cycles: rng.gen_range(1u64..6),
            port_occupancy_cycles: rng.gen_range(1u64..4),
            ports_per_bank: rng.gen_range(1usize..4),
            request_fifo_depth: [0, 1, 2, 8][rng.gen_range(0usize..4)],
            memo_lookup_cycles: rng.gen_range(1u64..3),
            filter_lookup_cycles: 1,
        },
        dram: Default::default(),
        access_path: AccessPath::Fast,
    }
}

/// Tentpole invariant: the pinned-run fast lane is bit-exact. A fast and
/// an exact subsystem driven in lockstep over random configs and random
/// access streams must return identical completions on every access and
/// identical statistics at the end — including configs that force 100%
/// fallback (scatter pins, nothing pinned) and configs where the ultra
/// lane dominates (full prefix, quiet FIFOs).
#[test]
fn fast_path_matches_exact_path() {
    let mut seen_mixed_fallback = false;
    let mut seen_fast_hits = false;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let cfg = random_subsystem_config(&mut rng);
        let exact_cfg = SubsystemConfig {
            access_path: AccessPath::Exact,
            ..cfg.clone()
        };
        let mut fast = MemorySubsystem::try_new(cfg).expect("valid random config");
        let mut exact = MemorySubsystem::try_new(exact_cfg).expect("valid random config");
        let mut now = 0u64;
        for i in 0..400 {
            now += rng.gen_range(0u64..3);
            let (kind, item) = if rng.gen_range(0u32..2) == 0 {
                (DataKind::Vertex, rng.gen_range(0u64..64))
            } else {
                (DataKind::Edge, rng.gen_range(0u64..128))
            };
            let rank = item as u32;
            let a = fast.access(kind, item, rank, now);
            let b = exact.access(kind, item, rank, now);
            assert_eq!(
                a, b,
                "seed {seed}: access {i} diverged ({kind:?} {item} @{now})"
            );
        }
        assert_eq!(fast.stats(), exact.stats(), "seed {seed}: stats diverged");
        assert_eq!(
            fast.dram_requests(),
            exact.dram_requests(),
            "seed {seed}: dram requests diverged"
        );
        assert_eq!(
            fast.prefetches(),
            exact.prefetches(),
            "seed {seed}: prefetches diverged"
        );
        assert_eq!(
            exact.fast_path_hits(),
            0,
            "seed {seed}: exact mode took the fast lane"
        );
        let total = fast.stats().total();
        let fast_hits = fast.fast_path_hits();
        seen_fast_hits |= fast_hits > 0;
        // The acceptance boundary: at least one seeded config where the
        // exact-path fallback serves > 10% of accesses while the fast
        // lane still fires (proving both sides of the boundary run).
        if fast_hits > 0 && (total - fast_hits) as f64 > 0.1 * total as f64 {
            seen_mixed_fallback = true;
        }
    }
    assert!(seen_fast_hits, "no case exercised the fast lane");
    assert!(
        seen_mixed_fallback,
        "no case mixed fast-lane hits with > 10% exact fallback"
    );
}

/// End-to-end flavour of the same invariant: over randomized
/// `LatencyConfig` and `MemoryBudget` draws, a full simulator run under
/// `--access-path=fast` is indistinguishable from `--access-path=exact`
/// on every simulated quantity.
#[test]
fn fast_path_matches_exact_path_full_sim() {
    for seed in 0..CASES / 4 {
        let mut rng = StdRng::seed_from_u64(8000 + seed);
        let Some(g) = random_graph(&mut rng, 48, 160) else {
            continue;
        };
        let latency = LatencyConfig {
            scratchpad_cycles: rng.gen_range(1u64..4),
            cache_cycles: rng.gen_range(1u64..6),
            port_occupancy_cycles: rng.gen_range(1u64..4),
            ports_per_bank: rng.gen_range(1usize..4),
            request_fifo_depth: [0, 1, 2, 8][rng.gen_range(0usize..4)],
            memo_lookup_cycles: rng.gen_range(1u64..3),
            filter_lookup_cycles: 1,
        };
        let budget = MemoryBudget::Fraction(rng.gen_range(2u32..60) as f64 / 100.0);
        let fast_cfg = GramerConfig {
            latency,
            budget,
            access_path: AccessPath::Fast,
            ..GramerConfig::default()
        };
        let exact_cfg = GramerConfig {
            access_path: AccessPath::Exact,
            ..fast_cfg.clone()
        };
        let pre = preprocess(&g, &fast_cfg).expect("random graph preprocesses");
        let app = MotifCounting::new(3).expect("valid");
        let a = Simulator::new(&pre, fast_cfg)
            .expect("valid config")
            .run(&app)
            .expect("runs");
        let b = Simulator::new(&pre, exact_cfg)
            .expect("valid config")
            .run(&app)
            .expect("runs");
        assert_eq!(a.cycles, b.cycles, "seed {seed}");
        assert_eq!(a.steps, b.steps, "seed {seed}");
        assert_eq!(a.steals, b.steals, "seed {seed}");
        assert_eq!(a.mem, b.mem, "seed {seed}");
        assert_eq!(a.dram_requests, b.dram_requests, "seed {seed}");
        assert_eq!(a.pu_steps, b.pu_steps, "seed {seed}");
        assert_eq!(a.pu_finish, b.pu_finish, "seed {seed}");
        assert_eq!(a.result.embeddings, b.result.embeddings, "seed {seed}");
        assert_eq!(
            a.result.candidates_examined, b.result.candidates_examined,
            "seed {seed}"
        );
        assert_eq!(
            a.result.counts.sorted(),
            b.result.counts.sorted(),
            "seed {seed}"
        );
    }
}

/// The epoch-batched engine (`--epoch=on`, the default) must be
/// indistinguishable from the reference event-queue interleaving
/// (`--epoch=off`) on every simulated quantity, across randomized PU/slot
/// geometries (down to the degenerate 1 PU × 1 slot), latency draws,
/// memory budgets, stealing/dispatch modes and both reference queue
/// implementations. This is the load-bearing property behind shipping
/// epoch mode as the default: it is a host-side engine choice, not a
/// model change.
#[test]
fn epoch_matches_interleaved() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let Some(g) = random_graph(&mut rng, 40, 140) else {
            continue;
        };
        // Degenerate and steal-heavy geometries are the interesting
        // corners: a lone slot exercises the fast-forward horizon, many
        // tiny PUs exercise donation/steal interleavings.
        let (num_pus, slots_per_pu) =
            [(1, 1), (1, 4), (8, 1), (2, 3), (8, 16), (3, 2)][rng.gen_range(0usize..6)];
        let latency = LatencyConfig {
            scratchpad_cycles: rng.gen_range(1u64..4),
            cache_cycles: rng.gen_range(1u64..6),
            port_occupancy_cycles: rng.gen_range(1u64..4),
            ports_per_bank: rng.gen_range(1usize..4),
            request_fifo_depth: [0, 1, 2, 8][rng.gen_range(0usize..4)],
            memo_lookup_cycles: rng.gen_range(1u64..3),
            filter_lookup_cycles: 1,
        };
        let epoch_cfg = GramerConfig {
            num_pus,
            slots_per_pu,
            ancestor_depth: 16,
            latency,
            budget: MemoryBudget::Fraction(rng.gen_range(2u32..60) as f64 / 100.0),
            work_stealing: rng.gen_bool(0.7),
            static_dispatch: rng.gen_bool(0.3),
            access_path: if rng.gen_bool(0.5) {
                AccessPath::Fast
            } else {
                AccessPath::Exact
            },
            epoch: EpochMode::On,
            ..GramerConfig::default()
        };
        let interleaved_cfg = GramerConfig {
            epoch: EpochMode::Off,
            scheduler: if rng.gen_bool(0.5) {
                Scheduler::Calendar
            } else {
                Scheduler::Heap
            },
            ..epoch_cfg.clone()
        };
        let pre = preprocess(&g, &epoch_cfg).expect("random graph preprocesses");
        let app = MotifCounting::new(3).expect("valid");
        let a = Simulator::new(&pre, epoch_cfg)
            .expect("valid config")
            .run(&app)
            .expect("runs");
        let b = Simulator::new(&pre, interleaved_cfg)
            .expect("valid config")
            .run(&app)
            .expect("runs");
        assert_eq!(a.cycles, b.cycles, "seed {seed}");
        assert_eq!(a.steps, b.steps, "seed {seed}");
        assert_eq!(a.steals, b.steals, "seed {seed}");
        assert_eq!(a.mem, b.mem, "seed {seed}");
        assert_eq!(a.dram_requests, b.dram_requests, "seed {seed}");
        assert_eq!(a.pu_steps, b.pu_steps, "seed {seed}");
        assert_eq!(a.pu_finish, b.pu_finish, "seed {seed}");
        assert_eq!(a.result.embeddings, b.result.embeddings, "seed {seed}");
        assert_eq!(
            a.result.candidates_examined, b.result.candidates_examined,
            "seed {seed}"
        );
        assert_eq!(
            a.result.counts.sorted(),
            b.result.counts.sorted(),
            "seed {seed}"
        );
    }
}

/// The recurrent-pattern pair memo (`--memo`) is a *model* optimization:
/// it may change cycles, memory traffic and energy, but the mining
/// results — embeddings, candidates examined, per-size acceptance
/// counts, pattern counts — must be bit-identical to the memo-off
/// reference path across randomized geometries, latency draws, budgets
/// and memo byte budgets (down to a single-entry table that thrashes).
#[test]
fn memo_preserves_mining_results() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(10_000 + seed);
        let Some(g) = random_graph(&mut rng, 40, 140) else {
            continue;
        };
        let (num_pus, slots_per_pu) = [(1, 1), (2, 3), (8, 16), (4, 2)][rng.gen_range(0usize..4)];
        let latency = LatencyConfig {
            scratchpad_cycles: rng.gen_range(1u64..4),
            cache_cycles: rng.gen_range(1u64..6),
            port_occupancy_cycles: rng.gen_range(1u64..4),
            ports_per_bank: rng.gen_range(1usize..4),
            request_fifo_depth: [0, 1, 2, 8][rng.gen_range(0usize..4)],
            memo_lookup_cycles: rng.gen_range(1u64..3),
            filter_lookup_cycles: 1,
        };
        // Budgets from one entry (16 B, constant eviction) to roomy.
        let bytes = [16u64, 64, 1 << 10, 1 << 16, 1 << 20][rng.gen_range(0usize..5)];
        let off_cfg = GramerConfig {
            num_pus,
            slots_per_pu,
            ancestor_depth: 16,
            latency,
            budget: MemoryBudget::Fraction(rng.gen_range(2u32..60) as f64 / 100.0),
            work_stealing: rng.gen_bool(0.7),
            memo: MemoMode::Off,
            ..GramerConfig::default()
        };
        let on_cfg = GramerConfig {
            memo: MemoMode::On { bytes },
            ..off_cfg.clone()
        };
        let pre = preprocess(&g, &off_cfg).expect("random graph preprocesses");
        let app = MotifCounting::new(3).expect("valid");
        let a = Simulator::new(&pre, off_cfg)
            .expect("valid config")
            .run(&app)
            .expect("runs");
        let b = Simulator::new(&pre, on_cfg)
            .expect("valid config")
            .run(&app)
            .expect("runs");
        assert!(a.memo.is_none(), "seed {seed}: reference path probed memo");
        let stats = b.memo.unwrap_or_else(|| panic!("seed {seed}: no stats"));
        assert_eq!(
            stats.lookups(),
            stats.hits + stats.misses,
            "seed {seed}: lookup accounting broken"
        );
        assert_eq!(a.result.embeddings, b.result.embeddings, "seed {seed}");
        assert_eq!(
            a.result.candidates_examined, b.result.candidates_examined,
            "seed {seed}"
        );
        assert_eq!(
            a.result.accepted_by_size, b.result.accepted_by_size,
            "seed {seed}"
        );
        assert_eq!(
            a.result.candidates_by_size, b.result.candidates_by_size,
            "seed {seed}"
        );
        assert_eq!(
            a.result.counts.sorted(),
            b.result.counts.sorted(),
            "seed {seed}"
        );
        // A memoizing run never issues *more* memory work than the
        // reference: hits only remove accesses.
        assert!(
            b.mem.total() <= a.mem.total(),
            "seed {seed}: memo added accesses ({} > {})",
            b.mem.total(),
            a.mem.total()
        );
    }
}

#[test]
fn generators_are_power_law_where_promised() {
    use gramer_suite::gramer_graph::stats::degree_stats;
    let cl = degree_stats(&generate::chung_lu(3000, 9000, 2.2, 1));
    let er = degree_stats(&generate::erdos_renyi(3000, 9000, 1));
    assert!(cl.gini > er.gini + 0.2);
}
