//! Cross-crate correctness: the accelerator simulator, the software DFS
//! and BFS engines, and a brute-force oracle must all agree on mining
//! results, under every configuration knob.

use gramer_suite::gramer::{preprocess, GramerConfig, MemoryBudget, MemoryMode, Simulator};
use gramer_suite::gramer_graph::{datasets::Dataset, generate};
use gramer_suite::gramer_mining::apps::{CliqueFinding, FrequentSubgraphMining, MotifCounting};
use gramer_suite::gramer_mining::brute::{brute_force_counts, total_connected};
use gramer_suite::gramer_mining::{BfsEnumerator, DfsEnumerator, EcmApp};

fn simulate<A: EcmApp>(
    graph: &gramer_suite::gramer_graph::CsrGraph,
    app: &A,
    cfg: GramerConfig,
) -> gramer_suite::gramer::RunReport {
    let pre = preprocess(graph, &cfg).unwrap();
    Simulator::new(&pre, cfg).unwrap().run(app).unwrap()
}

#[test]
fn accelerator_matches_brute_force_oracle() {
    // Small random graphs, every engine, per-pattern equality.
    for seed in 0..3 {
        let g = generate::erdos_renyi(16, 30, seed);
        let app = MotifCounting::new(4).expect("valid");
        let oracle = brute_force_counts(&g, 4);
        let report = simulate(&g, &app, GramerConfig::default());
        for size in 3..=4 {
            assert_eq!(
                report.result.total_at(size),
                total_connected(&oracle, size),
                "seed {seed} size {size}"
            );
        }
        for (size, pid, count) in report.result.counts.sorted() {
            let p = report.result.interner.pattern(pid);
            // The simulator mines the reordered graph; for the unlabeled
            // case patterns are relabel-invariant so the oracle counts
            // must match per canonical pattern.
            assert_eq!(
                oracle.get(&(size, *p)).copied().unwrap_or(0),
                count,
                "seed {seed} size {size} {p:?}"
            );
        }
    }
}

#[test]
fn all_engines_agree_on_dataset_analogs() {
    let g = Dataset::Citeseer.generate_scaled(4);
    let app = CliqueFinding::new(4).expect("valid");

    let dfs = DfsEnumerator::new(&g).run(&app);
    let (bfs, _) = BfsEnumerator::new(&g).run(&app);
    let accel = simulate(&g, &app, GramerConfig::default());

    assert_eq!(dfs.total_at(4), bfs.total_at(4));
    assert_eq!(dfs.total_at(4), accel.result.total_at(4));
    assert_eq!(dfs.embeddings, accel.result.embeddings);
    assert_eq!(dfs.candidates_examined, accel.result.candidates_examined);
    assert_eq!(dfs.accepted_by_size, accel.result.accepted_by_size);
}

#[test]
fn results_invariant_under_every_config_knob() {
    let g = generate::chung_lu(400, 1200, 2.4, 3);
    let app = MotifCounting::new(3).expect("valid");
    let baseline = simulate(&g, &app, GramerConfig::default())
        .result
        .total_at(3);

    let variants = [
        GramerConfig {
            slots_per_pu: 1,
            ..GramerConfig::default()
        },
        GramerConfig {
            num_pus: 3,
            ..GramerConfig::default()
        },
        GramerConfig {
            work_stealing: false,
            ..GramerConfig::default()
        },
        GramerConfig {
            static_dispatch: true,
            ..GramerConfig::default()
        },
        GramerConfig {
            partitions: 2,
            ..GramerConfig::default()
        },
        GramerConfig {
            memory_mode: MemoryMode::UniformLru,
            budget: MemoryBudget::Fraction(0.05),
            ..GramerConfig::default()
        },
        GramerConfig {
            memory_mode: MemoryMode::StaticLru,
            tau: Some(0.02),
            ..GramerConfig::default()
        },
        GramerConfig {
            lambda: 8.0,
            budget: MemoryBudget::Fraction(0.1),
            ..GramerConfig::default()
        },
    ];
    for (i, cfg) in variants.into_iter().enumerate() {
        assert_eq!(
            simulate(&g, &app, cfg).result.total_at(3),
            baseline,
            "config variant {i} changed mining results"
        );
    }
}

#[test]
fn fsm_frequent_patterns_agree_between_accelerator_and_reference() {
    let g = generate::with_random_labels(&generate::chung_lu(300, 900, 2.5, 5), 3, 5);
    let app = FrequentSubgraphMining::new(20);

    let reference = DfsEnumerator::new(&g).run(&app);
    let accel = simulate(&g, &app, GramerConfig::default());

    let ref_patterns = app.frequent_patterns(&reference);
    let accel_patterns = app.frequent_patterns(&accel.result);
    assert_eq!(ref_patterns.len(), accel_patterns.len());
    // Same multiset of (pattern, count); labels survive the reordering.
    let mut a: Vec<_> = ref_patterns.iter().map(|(p, c)| (**p, *c)).collect();
    let mut b: Vec<_> = accel_patterns.iter().map(|(p, c)| (**p, *c)).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn triangle_oracle_agrees_with_mining_and_accelerator() {
    use gramer_suite::gramer_graph::algo;
    for seed in 0..4 {
        let g = generate::chung_lu(500, 1500, 2.4, seed);
        let oracle = algo::triangle_count(&g);
        let app = CliqueFinding::new(3).expect("valid");
        let software = DfsEnumerator::new(&g).run(&app).total_at(3);
        let accel = simulate(&g, &app, GramerConfig::default())
            .result
            .total_at(3);
        assert_eq!(oracle, software, "seed {seed}");
        assert_eq!(oracle, accel, "seed {seed}");
    }
}

#[test]
fn core_numbers_bound_mined_cliques() {
    use gramer_suite::gramer_graph::algo;
    let g = generate::chung_lu(400, 1600, 2.3, 7);
    let bound = algo::max_clique_upper_bound(&g);
    // Find the largest k with a non-zero k-clique count (k <= 5 tested).
    let mut largest = 0;
    for k in 3..=5.min(bound) {
        let r = DfsEnumerator::new(&g).run(&CliqueFinding::new(k).expect("valid"));
        if r.total_at(k) > 0 {
            largest = k;
        }
    }
    assert!(
        largest <= bound,
        "mined K{largest} beyond core bound {bound}"
    );
}

#[test]
fn motif_census_patterns_are_all_connected_patterns() {
    use gramer_suite::gramer_mining::Pattern;
    let g = generate::chung_lu(300, 1200, 2.3, 9);
    let r = DfsEnumerator::new(&g).run(&MotifCounting::new(4).expect("valid"));
    let catalog = Pattern::all_connected(4);
    for (size, pid, count) in r.counts.sorted() {
        if size != 4 || count == 0 {
            continue;
        }
        let p = r.interner.pattern(pid);
        assert!(catalog.contains(p), "census produced unknown pattern {p:?}");
    }
    assert!(r.distinct_patterns_at(4) <= catalog.len());
}

#[test]
fn closed_form_counts_on_named_graphs() {
    // K7: C(7,k) k-cliques; every motif is a clique.
    let k7 = generate::complete(7);
    let r = simulate(
        &k7,
        &CliqueFinding::new(5).expect("valid"),
        GramerConfig::default(),
    );
    assert_eq!(r.result.total_at(5), 21);

    // C9: exactly n wedges at size 3, n paths at size 4, no cliques.
    let c9 = generate::cycle(9);
    let r = simulate(
        &c9,
        &MotifCounting::new(4).expect("valid"),
        GramerConfig::default(),
    );
    assert_eq!(r.result.total_at(3), 9);
    assert_eq!(r.result.total_at(4), 9);
    assert_eq!(r.result.count_where(3, |p| p.is_clique()), 0);

    // Star S10: C(10,2) wedges, C(10,3) 4-vertex stars.
    let s = generate::star(10);
    let r = simulate(
        &s,
        &MotifCounting::new(4).expect("valid"),
        GramerConfig::default(),
    );
    assert_eq!(r.result.total_at(3), 45);
    assert_eq!(r.result.total_at(4), 120);
    assert_eq!(r.result.distinct_patterns_at(4), 1);

    // K_{3,4}: 3·C(4,2) + 4·C(3,2) = 30 wedges, no triangles,
    // C(3,2)·C(4,2) = 18 induced four-cycles among the 4-motifs.
    let kb = generate::complete_bipartite(3, 4);
    let r = simulate(
        &kb,
        &MotifCounting::new(4).expect("valid"),
        GramerConfig::default(),
    );
    assert_eq!(r.result.total_at(3), 30);
    assert_eq!(r.result.count_where(3, |p| p.is_clique()), 0);
    let four_cycles = r.result.count_where(4, |p| {
        p.edge_count() == 4
            && (0..4).all(|i| (0..4).filter(|&j| j != i && p.has_edge(i, j)).count() == 2)
    });
    assert_eq!(four_cycles, 18);

    // 4×4 grid: 24 edges, wedges = sum of C(deg,2), no triangles.
    let gr = generate::grid(4, 4);
    let r = simulate(
        &gr,
        &MotifCounting::new(3).expect("valid"),
        GramerConfig::default(),
    );
    let wedges: u64 = gr
        .vertices()
        .map(|v| {
            let d = gr.degree(v) as u64;
            d * (d - 1) / 2
        })
        .sum();
    assert_eq!(r.result.total_at(3), wedges);
    assert_eq!(r.result.count_where(3, |p| p.is_clique()), 0);
}
