//! Cross-crate architectural-behaviour tests: the qualitative claims of
//! the paper's evaluation must hold on the simulator.

use gramer_suite::gramer::pipeline::{clock_rate_mhz, AncestorMode};
use gramer_suite::gramer::{preprocess, GramerConfig, MemoryBudget, Simulator};
use gramer_suite::gramer_baselines::{profile_on_cpu, FractalModel, RstreamModel};
use gramer_suite::gramer_graph::{datasets::Dataset, generate};
use gramer_suite::gramer_memsim::EnergyModel;
use gramer_suite::gramer_mining::apps::{CliqueFinding, MotifCounting};

#[test]
fn gramer_beats_both_baselines_on_time_and_energy() {
    let g = Dataset::Citeseer.generate_scaled(2);
    let app = CliqueFinding::new(4).expect("valid");
    let cfg = GramerConfig::default();
    let pre = preprocess(&g, &cfg).unwrap();
    let report = Simulator::new(&pre, cfg).unwrap().run(&app).unwrap();
    let profile = profile_on_cpu(&g, &app);

    let fractal = FractalModel::default().estimate_seconds(&profile);
    let rstream = RstreamModel::default()
        .estimate(&profile)
        .seconds()
        .expect("small graph completes");
    assert!(fractal > report.seconds, "Fractal should lose");
    assert!(rstream > report.seconds, "RStream should lose");

    let energy = EnergyModel::default();
    let gramer_j = report.energy(&energy).on_chip_j;
    assert!(energy.cpu_energy(fractal) > 5.0 * gramer_j);
    assert!(energy.cpu_energy(rstream) > 5.0 * gramer_j);
}

#[test]
fn rstream_collapses_under_intermediate_explosion() {
    // Table III's structure: 4-MC materialises everything; the
    // RStream/GRAMER ratio must blow up relative to CF on the same graph.
    let g = generate::chung_lu(900, 2700, 2.5, 11);
    let cfg = GramerConfig::default();
    let pre = preprocess(&g, &cfg).unwrap();
    let rstream = RstreamModel::default();

    let cf = CliqueFinding::new(4).expect("valid");
    let mc = MotifCounting::new(4).expect("valid");
    let cf_ratio = {
        let r = Simulator::new(&pre, cfg.clone()).unwrap().run(&cf).unwrap();
        let p = profile_on_cpu(&g, &cf);
        rstream.estimate(&p).seconds().expect("completes") / r.seconds
    };
    let mc_ratio = {
        let r = Simulator::new(&pre, cfg).unwrap().run(&mc).unwrap();
        let p = profile_on_cpu(&g, &mc);
        rstream.estimate(&p).seconds().expect("completes") / r.seconds
    };
    assert!(
        mc_ratio > cf_ratio,
        "intermediate explosion not visible: MC {mc_ratio:.1} <= CF {cf_ratio:.1}"
    );
}

#[test]
fn preprocessing_fraction_shrinks_with_graph_size() {
    // Fig. 11(b): preprocessing can reach half the runtime on tiny graphs
    // but fades on larger ones.
    let app = CliqueFinding::new(4).expect("valid");
    let frac = |g: &gramer_suite::gramer_graph::CsrGraph| {
        let cfg = GramerConfig::default();
        let pre = preprocess(g, &cfg).unwrap();
        let r = Simulator::new(&pre, cfg).unwrap().run(&app).unwrap();
        r.preprocess_seconds / r.seconds
    };
    let small = frac(&generate::chung_lu(200, 600, 2.5, 2));
    let large = frac(&generate::chung_lu(4000, 12000, 2.5, 2));
    assert!(small > large, "{small} <= {large}");
}

#[test]
fn table_iv_ordering_holds_for_all_apps() {
    let cfg = GramerConfig::default();
    for patterns in [false, true] {
        let slow = clock_rate_mhz(&cfg, AncestorMode::Flowing, patterns);
        let mid = clock_rate_mhz(&cfg, AncestorMode::Buffered, patterns);
        let fast = clock_rate_mhz(&cfg, AncestorMode::BufferedCompacted, patterns);
        assert!(slow < mid && mid < fast);
        // Compaction is the bigger lever, as in Table IV (115.6% vs 23.1%).
        assert!((fast / mid) > (mid / slow));
    }
}

#[test]
fn tau_sweep_improves_monotonically_toward_ideal() {
    // Fig. 14(a)'s reproducible core at simulator scale: performance
    // improves monotonically with tau up to the all-on-chip ideal, and
    // the hit ratio grows alongside. (The paper's absolute "tau = 5%
    // reaches 72-92% of ideal" needs full-size graphs whose traffic is
    // >90% concentrated — see EXPERIMENTS.md.)
    let g = Dataset::Mico.generate_scaled(200);
    let app = CliqueFinding::new(4).expect("valid");
    let run = |tau: f64| {
        let cfg = GramerConfig {
            tau: Some(tau),
            ..GramerConfig::default()
        };
        let pre = preprocess(&g, &cfg).unwrap();
        let r = Simulator::new(&pre, cfg).unwrap().run(&app).unwrap();
        (r.cycles, r.hit_ratio())
    };
    let taus = [0.01, 0.05, 0.20, 0.50];
    let results: Vec<_> = taus.iter().map(|&t| run(t)).collect();
    for w in results.windows(2) {
        assert!(
            w[1].0 <= w[0].0,
            "more on-chip memory slowed the run: {:?}",
            results
        );
        assert!(w[1].1 >= w[0].1, "hit ratio fell: {:?}", results);
    }
    // The ideal is materially faster than the starved 1% configuration.
    assert!(results[3].0 * 2 < results[0].0);
}

#[test]
fn work_stealing_helps_on_skewed_graphs() {
    let g = Dataset::Mico.generate_scaled(200);
    let app = CliqueFinding::new(4).expect("valid");
    let cycles = |stealing: bool| {
        let cfg = GramerConfig {
            work_stealing: stealing,
            ..GramerConfig::default()
        };
        let pre = preprocess(&g, &cfg).unwrap();
        Simulator::new(&pre, cfg).unwrap().run(&app).unwrap().cycles
    };
    let with = cycles(true);
    let without = cycles(false);
    assert!(
        (without as f64) > (with as f64) * 1.05,
        "stealing gave <5% on a skewed graph: {without} vs {with}"
    );
}

#[test]
fn memory_budget_degrades_gracefully() {
    // Smaller on-chip budgets must monotonically (weakly) increase DRAM
    // traffic.
    let g = generate::chung_lu(2000, 6000, 2.4, 4);
    let app = CliqueFinding::new(3).expect("valid");
    let dram = |frac: f64| {
        let cfg = GramerConfig {
            budget: MemoryBudget::Fraction(frac),
            ..GramerConfig::default()
        };
        let pre = preprocess(&g, &cfg).unwrap();
        Simulator::new(&pre, cfg)
            .unwrap()
            .run(&app)
            .unwrap()
            .dram_requests
    };
    let big = dram(0.5);
    let mid = dram(0.1);
    let small = dram(0.02);
    assert!(big <= mid, "{big} > {mid}");
    assert!(mid <= small, "{mid} > {small}");
}
