//! Query-matrix and filter-soundness tests.
//!
//! Three pinned labeled queries run over the labeled golden BA graph
//! under whatever `GRAMER_SCHEDULER` / `GRAMER_ACCESS_PATH` /
//! `GRAMER_EPOCH` / `GRAMER_MEMO` combination the tier-1 matrix selects
//! (`scripts/tier1.sh query` iterates them). For every combination:
//!
//! - the filtered run's full-size match total must equal the brute
//!   run's, and both must equal the pinned golden count;
//! - the filter's probe counters (admitted / probes / rejects) are
//!   pinned too — they count examined extensions, which every matrix
//!   leg produces identically (the same property the golden timing
//!   suite relies on);
//! - at the mining layer the exact embedding vertex-sets are compared,
//!   not just totals, against both the unfiltered enumerator and an
//!   independent candidate-join matcher.
//!
//! The property tests then hammer the same invariants over 64 random
//! labeled graphs × random connected queries each; every failure
//! message carries the case seed.

use gramer_suite::gramer::{preprocess, GramerConfig, Simulator};
use gramer_suite::gramer_graph::{generate, CsrGraph};
use gramer_suite::gramer_mining::query::{enumerate_matches, match_query};
use gramer_suite::gramer_mining::{CandidateFilter, CandidateSets, NoFilter, QueryApp, QueryGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Matrix-aware config, mirroring `tests/golden.rs::base_config`.
fn base_config() -> GramerConfig {
    let mut cfg = GramerConfig::default();
    if let Ok(s) = std::env::var("GRAMER_SCHEDULER") {
        cfg.scheduler = s.parse().expect("GRAMER_SCHEDULER must be calendar|heap");
    }
    if let Ok(s) = std::env::var("GRAMER_ACCESS_PATH") {
        cfg.access_path = s.parse().expect("GRAMER_ACCESS_PATH must be fast|exact");
    }
    if let Ok(s) = std::env::var("GRAMER_EPOCH") {
        cfg.epoch = s.parse().expect("GRAMER_EPOCH must be on|off");
    }
    if let Ok(s) = std::env::var("GRAMER_MEMO") {
        cfg.memo = s.parse().expect("GRAMER_MEMO must be on|off|BYTES");
    }
    cfg
}

/// The labeled golden graph: BA(200, 3) seed 11 — the same topology the
/// golden timing suite pins — with labels drawn from `1..=6`, seed 3.
fn labeled_ba() -> CsrGraph {
    generate::with_random_labels(&generate::barabasi_albert(200, 3, 11), 6, 3)
}

/// One pinned query: the compact spec plus the expected full-size match
/// total and filter counters. The counters count examined extensions,
/// which are identical across every matrix leg.
struct PinnedQuery {
    spec: &'static str,
    matches: u64,
    admitted: u64,
    probes: u64,
    rejects: u64,
}

const PINNED: &[PinnedQuery] = &[
    PinnedQuery {
        spec: "1,2,3:0-1,1-2",
        matches: 34,
        admitted: 29,
        probes: 1015,
        rejects: 653,
    },
    PinnedQuery {
        spec: "4,4:0-1",
        matches: 37,
        admitted: 32,
        probes: 237,
        rejects: 163,
    },
    PinnedQuery {
        spec: "1,2,1,3:0-1,1-2,2-3",
        matches: 11,
        admitted: 11,
        probes: 1274,
        rejects: 970,
    },
];

/// Sorted full-size embedding vertex-sets, deduplicated — the canonical
/// "what did we find" value for set-equality comparisons.
fn canonical(mut sets: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    sets.sort();
    sets.dedup();
    sets
}

#[test]
fn pinned_queries_hold_across_the_matrix() {
    let graph = labeled_ba();
    let cfg = base_config();
    let pre = preprocess(&graph, &cfg).unwrap();
    for pq in PINNED {
        let query = QueryGraph::from_spec(pq.spec).unwrap();
        let k = query.num_vertices();
        let app = QueryApp::new(query).unwrap();
        let brute = Simulator::new(&pre, cfg.clone())
            .unwrap()
            .run(&app)
            .unwrap();
        let filtered = Simulator::new(&pre, cfg.clone())
            .unwrap()
            .run_query(&app)
            .unwrap();
        assert_eq!(
            filtered.result.total_at(k),
            brute.result.total_at(k),
            "{}: filtered diverged from brute",
            pq.spec
        );
        assert_eq!(
            filtered.result.total_at(k),
            pq.matches,
            "{}: match total moved off the golden value",
            pq.spec
        );
        assert!(
            brute.query.is_none(),
            "{}: brute run grew query stats",
            pq.spec
        );
        let q = filtered.query.expect("filtered run must carry query stats");
        assert_eq!(
            (q.admitted, q.probes, q.rejects),
            (pq.admitted, pq.probes, pq.rejects),
            "{}: filter counters moved off the golden values",
            pq.spec
        );
    }
}

#[test]
fn pinned_queries_filtered_embeddings_are_bit_identical() {
    // Mining-layer check on the reordered graph the simulator actually
    // mines: exact vertex-sets, three independent implementations.
    let graph = labeled_ba();
    let cfg = base_config();
    let pre = preprocess(&graph, &cfg).unwrap();
    for pq in PINNED {
        let query = QueryGraph::from_spec(pq.spec).unwrap();
        let app = QueryApp::new(query.clone()).unwrap();
        let candidates = CandidateSets::build(&pre.graph, &query);
        let mut filter = CandidateFilter::new(&candidates);
        let brute = canonical(enumerate_matches(&pre.graph, &app, &mut NoFilter));
        let filtered = canonical(enumerate_matches(&pre.graph, &app, &mut filter));
        assert_eq!(filtered, brute, "{}: embedding sets differ", pq.spec);
        let joined = canonical(match_query(&pre.graph, &query, &candidates));
        assert_eq!(
            joined, brute,
            "{}: candidate-join reference differs",
            pq.spec
        );
    }
}

/// Cases per property (the suite convention — see `tests/properties.rs`).
const CASES: u64 = 64;

/// A connected random query over `nq` vertices with labels in
/// `1..=alphabet`: a random spanning tree plus a few extra edges.
fn random_connected_query(rng: &mut StdRng, alphabet: u16) -> QueryGraph {
    let nq = rng.gen_range(2usize..6);
    let labels: Vec<u16> = (0..nq).map(|_| rng.gen_range(1..=alphabet)).collect();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for v in 1..nq {
        edges.push((rng.gen_range(0..v), v));
    }
    for _ in 0..rng.gen_range(0usize..3) {
        let a = rng.gen_range(0..nq);
        let b = rng.gen_range(0..nq);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a, b));
        }
    }
    QueryGraph::from_parts(&labels, &edges).expect("tree + extras is connected and in range")
}

/// A random labeled graph: BA or ER topology, labels from a small
/// alphabet so queries actually match sometimes.
fn random_labeled_graph(rng: &mut StdRng) -> CsrGraph {
    let n = rng.gen_range(20usize..120);
    let seed = rng.gen_range(0u64..1 << 20);
    let base = if rng.gen_bool(0.5) {
        generate::barabasi_albert(n, rng.gen_range(2usize..4), seed)
    } else {
        let m = rng.gen_range(n..4 * n);
        generate::erdos_renyi(n, m, seed)
    };
    let alphabet = rng.gen_range(1u16..5);
    generate::with_random_labels(&base, alphabet, seed ^ 0x9e37)
}

#[test]
fn prop_filtered_enumeration_equals_unfiltered() {
    for case in 0..CASES {
        let seed = 0xc0ffee ^ (case * 7919);
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = random_labeled_graph(&mut rng);
        let query = random_connected_query(&mut rng, 4);
        let app = QueryApp::new(query.clone()).expect("valid query");
        let candidates = CandidateSets::build(&graph, &query);
        let mut filter = CandidateFilter::new(&candidates);
        let brute = canonical(enumerate_matches(&graph, &app, &mut NoFilter));
        let filtered = canonical(enumerate_matches(&graph, &app, &mut filter));
        assert_eq!(
            filtered, brute,
            "seed {seed}: filtered enumeration diverged for query {query}"
        );
        // Independent implementation: candidate-join backtracking over
        // the filter's own candidate sets.
        let joined = canonical(match_query(&graph, &query, &candidates));
        assert_eq!(
            joined, brute,
            "seed {seed}: candidate-join reference diverged for query {query}"
        );
    }
}

#[test]
fn prop_candidate_sets_cover_all_matched_vertices() {
    for case in 0..CASES {
        let seed = 0xf117e4 ^ (case * 104729);
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = random_labeled_graph(&mut rng);
        let query = random_connected_query(&mut rng, 4);
        let candidates = CandidateSets::build(&graph, &query);
        // Soundness: every vertex of every real match sits in the union,
        // and per-query-vertex images sit in that vertex's candidate set.
        let matches = match_query(&graph, &query, &candidates);
        for emb in &matches {
            for &v in emb {
                assert!(
                    candidates.union().contains(v),
                    "seed {seed}: match vertex {v} missing from candidate union"
                );
            }
        }
        // The filtered simulator path must agree end-to-end as well.
        let cfg = GramerConfig::default();
        let pre = preprocess(&graph, &cfg).unwrap();
        let app = QueryApp::new(query.clone()).expect("valid query");
        let brute = Simulator::new(&pre, cfg.clone())
            .unwrap()
            .run(&app)
            .unwrap();
        let filtered = Simulator::new(&pre, cfg).unwrap().run_query(&app).unwrap();
        let k = query.num_vertices();
        assert_eq!(
            filtered.result.total_at(k),
            brute.result.total_at(k),
            "seed {seed}: simulator totals diverged for query {query}"
        );
    }
}
