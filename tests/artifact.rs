//! Cross-crate tests of the `.gra` artifact pipeline (ISSUE 6
//! tentpole): round-trip exactness over many graph shapes, loader
//! robustness under seeded byte corruption, format-drift pinning via a
//! whole-file FNV digest, and mmap/copy load-path equivalence.

use gramer::{preprocess, GramerConfig, Preprocessed};
use gramer_graph::artifact::{self, GraphArtifact};
use gramer_graph::{generate, GraphBuilder, GraphError};

/// FNV-1a 64 over a whole artifact file, the digest used by the pinned
/// format test below (same function the format itself uses internally).
fn file_fnv(bytes: &[u8]) -> u64 {
    artifact::fnv1a(bytes)
}

fn golden_ba() -> gramer_graph::CsrGraph {
    generate::barabasi_albert(200, 3, 11)
}

fn encode_of(graph: &gramer_graph::CsrGraph, cfg: &GramerConfig) -> (Preprocessed, Vec<u8>) {
    let pre = preprocess(graph, cfg).unwrap();
    let bytes = artifact::encode(&pre.artifact_contents(0)).unwrap();
    (pre, bytes)
}

/// Whole-file FNV-1a of the artifact built from the golden BA workload
/// graph (`barabasi_albert(200, 3, 11)`, default config, source digest
/// 0). The `.gra` encoding is canonical, so ANY change to the v1 byte
/// layout — section order, padding, header fields, element widths —
/// moves this constant. If you changed the format deliberately, bump
/// `artifact::FORMAT_VERSION`, update `docs/FORMAT.md`, and re-pin.
const GOLDEN_BA_ARTIFACT_FNV: u64 = 0xc9b3_8a56_1d75_27fc;

#[test]
fn golden_ba_artifact_bytes_are_pinned() {
    let (_, bytes) = encode_of(&golden_ba(), &GramerConfig::default());
    assert_eq!(
        file_fnv(&bytes),
        GOLDEN_BA_ARTIFACT_FNV,
        "the .gra v1 byte layout changed; see docs/FORMAT.md before re-pinning"
    );
}

/// Round-trip property over a spread of graph shapes — power-law,
/// labeled, isolated-vertex, regular — with both the τ formula and an
/// explicit override: preprocessing resumed from an artifact must equal
/// direct preprocessing exactly (graph, permutations, τ bits, pins,
/// masks, modeled seconds).
#[test]
fn artifact_roundtrip_equals_direct_preprocess() {
    let mut shapes: Vec<(String, gramer_graph::CsrGraph)> = vec![
        ("golden-ba".into(), golden_ba()),
        (
            "rmat".into(),
            generate::rmat(7, 900, generate::RmatParams::default(), 13),
        ),
        (
            "labeled-er".into(),
            generate::with_random_labels(&generate::erdos_renyi(150, 400, 2), 5, 3),
        ),
        ("star".into(), generate::star(40)),
        ("grid".into(), generate::grid(8, 9)),
    ];
    // Isolated vertices survive the CSR round-trip (they have no edges,
    // only offset entries).
    let mut b = GraphBuilder::new();
    b.add_edge(0, 2);
    b.add_edge(2, 5); // 1, 3, 4 isolated
    shapes.push(("isolated".into(), b.build().unwrap()));

    let configs = [
        GramerConfig::default(),
        GramerConfig {
            tau: Some(0.125),
            ..GramerConfig::default()
        },
    ];
    for (name, graph) in &shapes {
        for cfg in &configs {
            let (direct, bytes) = encode_of(graph, cfg);
            let art = GraphArtifact::from_bytes(bytes).unwrap();
            let resumed = Preprocessed::from_artifact(&art, cfg).unwrap();
            let tag = format!("{name}/tau={:?}", cfg.tau);
            assert_eq!(resumed.graph, direct.graph, "{tag}: graph");
            assert_eq!(
                resumed.reordering.old_id, direct.reordering.old_id,
                "{tag}: old_id"
            );
            assert_eq!(
                resumed.reordering.new_id, direct.reordering.new_id,
                "{tag}: new_id (ON1 ranks)"
            );
            assert_eq!(resumed.tau.to_bits(), direct.tau.to_bits(), "{tag}: tau");
            assert_eq!(resumed.vertex_pin, direct.vertex_pin, "{tag}: vertex_pin");
            assert_eq!(resumed.edge_pin, direct.edge_pin, "{tag}: edge_pin");
            assert_eq!(
                resumed.vertex_pin_mask, direct.vertex_pin_mask,
                "{tag}: vertex mask"
            );
            assert_eq!(
                resumed.edge_pin_mask, direct.edge_pin_mask,
                "{tag}: edge mask"
            );
            assert_eq!(
                resumed.preprocess_seconds.to_bits(),
                direct.preprocess_seconds.to_bits(),
                "{tag}: modeled preprocess seconds"
            );
            art.verify_deep().unwrap();
        }
    }
}

/// Seeded byte-level corruption of a valid artifact: the loader must
/// never panic, and — because every byte of a `.gra` file is covered by
/// either a header check or the payload digest — every corrupted load
/// must fail with a typed `artifact-*` error.
#[test]
fn corrupted_artifacts_never_panic_and_errors_are_typed() {
    let (_, base) = encode_of(
        &generate::barabasi_albert(60, 2, 21),
        &GramerConfig::default(),
    );
    assert!(GraphArtifact::from_bytes(base.clone()).is_ok());

    // Same deterministic LCG as the edge-list corruption test.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };

    for round in 0..500 {
        let mut buf = base.clone();
        let mut changed = false;
        if round % 5 == 4 {
            // Truncation round: cut the tail off at a random point.
            let keep = next() as usize % buf.len();
            buf.truncate(keep);
            changed = keep < base.len();
        } else {
            let flips = 1 + (next() as usize % 4);
            for _ in 0..flips {
                let i = next() as usize % buf.len();
                let v = (next() & 0xFF) as u8;
                changed |= buf[i] != v;
                buf[i] = v;
            }
        }
        if !changed {
            continue;
        }
        match GraphArtifact::from_bytes(buf) {
            Ok(_) => panic!("round {round}: corrupted artifact loaded successfully"),
            Err(e) => {
                let kind = e.kind();
                assert!(
                    kind.starts_with("artifact-"),
                    "round {round}: expected a typed artifact error, got {kind} ({e})"
                );
                assert!(!e.to_string().is_empty());
            }
        }
    }
}

/// The typed failure taxonomy, one representative per variant, each
/// carrying a byte offset (or equivalent locator) in its message.
#[test]
fn loader_failures_name_their_variant_and_offset() {
    let (_, base) = encode_of(&generate::cycle(30), &GramerConfig::default());

    // Truncated mid-section.
    let mut t = base.clone();
    t.truncate(300);
    match GraphArtifact::from_bytes(t) {
        Err(GraphError::ArtifactTruncated { offset, .. }) => assert_eq!(offset, 300),
        other => panic!("expected truncation, got {other:?}"),
    }

    // Wrong magic.
    let mut m = base.clone();
    m[0..8].copy_from_slice(b"NOTGRAAF");
    assert!(matches!(
        GraphArtifact::from_bytes(m),
        Err(GraphError::ArtifactMagic { .. })
    ));

    // Future version.
    let mut v = base.clone();
    v[8..12].copy_from_slice(&7u32.to_le_bytes());
    match GraphArtifact::from_bytes(v) {
        Err(GraphError::ArtifactVersion { found, supported }) => {
            assert_eq!((found, supported), (7, artifact::FORMAT_VERSION));
        }
        other => panic!("expected version error, got {other:?}"),
    }

    // Payload bit-rot -> digest mismatch.
    let mut d = base.clone();
    let mid = base.len() / 2;
    d[mid] ^= 0x40;
    match GraphArtifact::from_bytes(d) {
        Err(GraphError::ArtifactDigest { stored, computed }) => assert_ne!(stored, computed),
        other => panic!("expected digest mismatch, got {other:?}"),
    }

    // Structural damage with a fixed-up digest -> malformed, with the
    // offending offset in the message.
    let mut s = base.clone();
    // Break the first CSR offset (must be 0) inside the OFFSETS section
    // at byte 320 (256 header+TOC ... META is 64 bytes at 256).
    s[320] = 1;
    let digest = artifact::fnv1a(&s[64..]);
    s[32..40].copy_from_slice(&digest.to_le_bytes());
    match GraphArtifact::from_bytes(s) {
        Err(GraphError::ArtifactMalformed { offset, what }) => {
            assert_eq!(offset, 320);
            assert!(what.contains("offset"), "message was {what:?}");
        }
        other => panic!("expected malformed, got {other:?}"),
    }
}

/// `GraphArtifact::open` via mmap and via the forced-copy fallback
/// (`GRAMER_ARTIFACT_NO_MMAP=1`) must expose identical contents.
#[test]
fn mmap_and_copy_load_paths_agree() {
    let (_, bytes) = encode_of(&golden_ba(), &GramerConfig::default());
    let dir = std::env::temp_dir().join(format!("gra-loadpath-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("golden-ba.gra");
    std::fs::write(&path, &bytes).unwrap();

    let mapped = GraphArtifact::open(&path).unwrap();
    std::env::set_var("GRAMER_ARTIFACT_NO_MMAP", "1");
    let copied = GraphArtifact::open(&path);
    std::env::remove_var("GRAMER_ARTIFACT_NO_MMAP");
    let copied = copied.unwrap();

    assert!(!copied.is_mapped());
    assert_eq!(mapped.payload_digest(), copied.payload_digest());
    assert_eq!(&*mapped.offsets(), &*copied.offsets());
    assert_eq!(&*mapped.adjacency(), &*copied.adjacency());
    assert_eq!(&*mapped.labels(), &*copied.labels());
    assert_eq!(&*mapped.old_id(), &*copied.old_id());
    assert_eq!(&*mapped.new_id(), &*copied.new_id());
    assert_eq!(mapped.to_csr(), copied.to_csr());

    std::fs::remove_dir_all(&dir).ok();
}
