//! Golden semantics snapshots for the simulator.
//!
//! These tests lock the *simulated* quantities — cycles, steals, steps,
//! embeddings, and the per-size accepted/candidate counts — for two
//! small seeded workloads. Scheduler or probe rewrites in the hot path
//! must not shift any of these numbers: a performance change that moves
//! a golden value is a semantics change, not an optimisation, and must
//! be called out explicitly (by updating the constant and explaining
//! why in the commit).

use gramer::{
    preprocess, AccessPath, EpochMode, GramerConfig, MemoMode, RunReport, Scheduler, Simulator,
};
use gramer_graph::generate::{self, RmatParams};
use gramer_graph::CsrGraph;
use gramer_mining::apps::{CliqueFinding, MotifCounting};
use gramer_mining::EcmApp;

/// Renders every semantics-bearing field of a [`RunReport`] into one
/// comparable line. Wall-clock-derived fields are deliberately absent.
fn golden_summary(r: &RunReport) -> String {
    format!(
        "cycles={} steals={} steps={} dram={} embeddings={} candidates={} \
         accepted_by_size={:?} candidates_by_size={:?} pu_steps={:?}",
        r.cycles,
        r.steals,
        r.steps,
        r.dram_requests,
        r.result.embeddings,
        r.result.candidates_examined,
        r.result.accepted_by_size,
        r.result.candidates_by_size,
        r.pu_steps,
    )
}

/// Base config for the golden runs. The tier-1 matrix (`scripts/tier1.sh`)
/// re-runs this suite under every `scheduler` × `access_path` combination
/// via `GRAMER_SCHEDULER` / `GRAMER_ACCESS_PATH`, once more with
/// `GRAMER_EPOCH=off` selecting the reference event-queue interleaving,
/// and once with `GRAMER_MEMO=on`. Scheduler/access-path/epoch are
/// host-side choices, so the golden constants hold bit-for-bit under
/// every combination; the memo is a *model* change, so under
/// `GRAMER_MEMO=on` the timing constants are skipped and only the
/// mining-result fields are held to the golden lines (see
/// [`assert_golden_results`]).
fn base_config() -> GramerConfig {
    let mut cfg = GramerConfig::default();
    if let Ok(s) = std::env::var("GRAMER_SCHEDULER") {
        cfg.scheduler = s.parse().expect("GRAMER_SCHEDULER must be calendar|heap");
    }
    if let Ok(s) = std::env::var("GRAMER_ACCESS_PATH") {
        cfg.access_path = s.parse().expect("GRAMER_ACCESS_PATH must be fast|exact");
    }
    if let Ok(s) = std::env::var("GRAMER_EPOCH") {
        cfg.epoch = s.parse().expect("GRAMER_EPOCH must be on|off");
    }
    if let Ok(s) = std::env::var("GRAMER_MEMO") {
        cfg.memo = s.parse().expect("GRAMER_MEMO must be on|off|BYTES");
    }
    cfg
}

fn run<A: EcmApp>(graph: &CsrGraph, app: &A, cfg: &GramerConfig) -> RunReport {
    let pre = preprocess(graph, cfg).unwrap();
    Simulator::new(&pre, cfg.clone()).unwrap().run(app).unwrap()
}

fn ba_graph() -> CsrGraph {
    generate::barabasi_albert(200, 3, 11)
}

fn rmat_graph() -> CsrGraph {
    generate::rmat(
        8,
        2_000,
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        },
        7,
    )
}

/// BA(200,3) under 4-clique finding, default config.
const GOLDEN_BA_CF4: &str = "cycles=25565 steals=2507 steps=30891 dram=249 \
     embeddings=786 candidates=27416 accepted_by_size=[0, 0, 594, 174, 18] \
     candidates_by_size=[0, 0, 1188, 14330, 11898] \
     pu_steps=[11532, 8470, 2509, 2129, 1809, 1535, 1742, 1165]";

/// R-MAT(2^8, 2000 edges) under 3-motif counting, default config.
const GOLDEN_RMAT_MC3: &str = "cycles=48490 steals=6899 steps=92482 dram=444 \
     embeddings=34016 candidates=84066 accepted_by_size=[0, 0, 1261, 32755] \
     candidates_by_size=[0, 0, 2522, 81544] \
     pu_steps=[22897, 12808, 11697, 10478, 9735, 8921, 8850, 7096]";

/// Collapses runs of whitespace so the line-wrapped golden constants
/// compare as single-space-separated token streams.
fn normalized(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Asserts the mining-result fields of `r` match `golden` verbatim —
/// the memo-on golden check. Timing fields (cycles, steals, dram,
/// pu_steps) are memo-off quantities and deliberately not compared.
fn assert_golden_results(r: &RunReport, golden: &str) {
    let results = format!(
        "embeddings={} candidates={} accepted_by_size={:?} candidates_by_size={:?}",
        r.result.embeddings,
        r.result.candidates_examined,
        r.result.accepted_by_size,
        r.result.candidates_by_size,
    );
    assert!(
        normalized(golden).contains(&normalized(&results)),
        "mining results diverged from the golden line:\n  got      {results}\n  expected within {golden}"
    );
}

/// Runs one golden workload: under the default `--memo off` the full
/// timing-bearing golden line must hold byte-for-byte; under
/// `GRAMER_MEMO=on` the memo legitimately moves timing, so only the
/// mining results are pinned — and the table must actually get hits.
fn check_golden(report: &RunReport, cfg: &GramerConfig, golden: &str) {
    if matches!(cfg.memo, MemoMode::Off) {
        assert_eq!(golden_summary(report), golden);
    } else {
        assert_golden_results(report, golden);
        assert!(
            report.memo.map_or(0, |s| s.hits) > 0,
            "memo was on but never hit"
        );
    }
}

#[test]
fn golden_ba200_cf4() {
    let cfg = base_config();
    let report = run(&ba_graph(), &CliqueFinding::new(4).unwrap(), &cfg);
    check_golden(&report, &cfg, GOLDEN_BA_CF4);
}

#[test]
fn golden_rmat_mc3() {
    let cfg = base_config();
    let report = run(&rmat_graph(), &MotifCounting::new(3).unwrap(), &cfg);
    check_golden(&report, &cfg, GOLDEN_RMAT_MC3);
}

/// The memo dimension of the golden matrix, runnable without the env
/// hook: memo-on mining results equal the memo-off golden lines, the
/// table gets hits on both workloads, and the memoized run never does
/// more memory work than the reference.
#[test]
fn golden_workloads_with_memo_on() {
    // Pin both sides explicitly (the `GRAMER_MEMO` env hook must not
    // leak into the reference config when tier1 runs the memo cell).
    let off = GramerConfig {
        memo: MemoMode::Off,
        ..base_config()
    };
    let on = GramerConfig {
        memo: MemoMode::On { bytes: 1 << 16 },
        ..off.clone()
    };

    let ba = ba_graph();
    let cf = CliqueFinding::new(4).unwrap();
    let base = run(&ba, &cf, &off);
    let memo = run(&ba, &cf, &on);
    assert_golden_results(&memo, GOLDEN_BA_CF4);
    assert!(memo.memo.map_or(0, |s| s.hits) > 0, "BA x CF4: no hits");
    assert!(memo.mem.total() <= base.mem.total(), "BA x CF4: more work");

    let rmat = rmat_graph();
    let mc = MotifCounting::new(3).unwrap();
    let base = run(&rmat, &mc, &off);
    let memo = run(&rmat, &mc, &on);
    assert_golden_results(&memo, GOLDEN_RMAT_MC3);
    assert!(memo.memo.map_or(0, |s| s.hits) > 0, "RMAT x MC3: no hits");
    assert!(
        memo.mem.total() <= base.mem.total(),
        "RMAT x MC3: more work"
    );
}

/// Everything simulated in a [`RunReport`], including the memory-side
/// statistics and per-PU finish times that `golden_summary` leaves out.
/// Only wall-clock-derived fields (`preprocess_seconds`) are excluded.
fn full_semantic_view(r: &RunReport) -> String {
    format!(
        "{} pu_finish={:?} mem={:?} counts={:?} transfer_seconds={}",
        golden_summary(r),
        r.pu_finish,
        r.mem,
        r.result.counts,
        r.transfer_seconds,
    )
}

/// The calendar queue is the default scheduler; the binary heap is kept
/// as the reference implementation. On both golden workloads the two
/// must produce *identical* reports — scheduling is a host-side choice,
/// not a simulated one (ISSUE 3 tentpole invariant).
#[test]
fn heap_scheduler_matches_calendar_on_golden_workloads() {
    let cal_cfg = GramerConfig {
        scheduler: Scheduler::Calendar,
        ..base_config()
    };
    let heap_cfg = GramerConfig {
        scheduler: Scheduler::Heap,
        ..base_config()
    };

    let ba = ba_graph();
    let cf = CliqueFinding::new(4).unwrap();
    assert_eq!(
        full_semantic_view(&run(&ba, &cf, &cal_cfg)),
        full_semantic_view(&run(&ba, &cf, &heap_cfg)),
        "BA(200,3) x CF(4): heap and calendar schedulers diverged"
    );

    let rmat = rmat_graph();
    let mc = MotifCounting::new(3).unwrap();
    assert_eq!(
        full_semantic_view(&run(&rmat, &mc, &cal_cfg)),
        full_semantic_view(&run(&rmat, &mc, &heap_cfg)),
        "R-MAT(2^8) x MC(3): heap and calendar schedulers diverged"
    );
}

/// Runs `app` starting from a `.gra` artifact round-trip of the
/// preprocessed graph instead of the direct [`preprocess`] result.
fn run_via_artifact<A: EcmApp>(graph: &CsrGraph, app: &A, cfg: &GramerConfig) -> RunReport {
    let pre = preprocess(graph, cfg).unwrap();
    let bytes = gramer_graph::artifact::encode(&pre.artifact_contents(0)).unwrap();
    let art = gramer_graph::GraphArtifact::from_bytes(bytes).unwrap();
    let pre = gramer::Preprocessed::from_artifact(&art, cfg).unwrap();
    Simulator::new(&pre, cfg.clone()).unwrap().run(app).unwrap()
}

/// The `.gra` artifact path (ISSUE 6 tentpole) must be invisible in the
/// results: a run resumed from an artifact produces a [`RunReport`]
/// whose serialized JSON is byte-identical to the edge-list path's, on
/// both golden workloads. Runs under the full scheduler × access-path
/// matrix via `scripts/tier1.sh golden`.
#[test]
fn artifact_path_reports_are_bit_identical() {
    let cfg = base_config();

    let ba = ba_graph();
    let cf = CliqueFinding::new(4).unwrap();
    assert_eq!(
        run(&ba, &cf, &cfg).to_json_value().to_string(),
        run_via_artifact(&ba, &cf, &cfg).to_json_value().to_string(),
        "BA(200,3) x CF(4): artifact path diverged from edge-list path"
    );

    let rmat = rmat_graph();
    let mc = MotifCounting::new(3).unwrap();
    assert_eq!(
        run(&rmat, &mc, &cfg).to_json_value().to_string(),
        run_via_artifact(&rmat, &mc, &cfg)
            .to_json_value()
            .to_string(),
        "R-MAT(2^8) x MC(3): artifact path diverged from edge-list path"
    );
}

/// The epoch-batched engine (ISSUE 8 tentpole) is the default inner
/// loop; `--epoch=off` keeps the reference event-queue interleaving. On
/// both golden workloads the two must produce *identical* serialized
/// reports — epoch batching is a host-side engine choice, not a model
/// change. (The randomized flavour is `epoch_matches_interleaved` in
/// `tests/properties.rs`.)
#[test]
fn epoch_engine_matches_interleaved_on_golden_workloads() {
    let epoch_cfg = GramerConfig {
        epoch: EpochMode::On,
        ..base_config()
    };
    let interleaved_cfg = GramerConfig {
        epoch: EpochMode::Off,
        ..base_config()
    };
    assert_eq!(GramerConfig::default().epoch, EpochMode::On);

    let ba = ba_graph();
    let cf = CliqueFinding::new(4).unwrap();
    assert_eq!(
        run(&ba, &cf, &epoch_cfg).to_json_value().to_string(),
        run(&ba, &cf, &interleaved_cfg).to_json_value().to_string(),
        "BA(200,3) x CF(4): epoch engine diverged from interleaved engine"
    );

    let rmat = rmat_graph();
    let mc = MotifCounting::new(3).unwrap();
    assert_eq!(
        run(&rmat, &mc, &epoch_cfg).to_json_value().to_string(),
        run(&rmat, &mc, &interleaved_cfg)
            .to_json_value()
            .to_string(),
        "R-MAT(2^8) x MC(3): epoch engine diverged from interleaved engine"
    );
}

/// Running the two golden workloads as independent cells on a sharded
/// pool (`sim_threads=4`) must yield byte-identical serialized reports,
/// in the same order, as the serial `sim_threads=1` path — host
/// parallelism across cells never touches a simulated quantity, and
/// result order is cell order by construction (see `gramer::shard`).
#[test]
fn sharded_cells_reports_are_bit_identical_to_serial() {
    let run_matrix = |threads: usize| -> Vec<String> {
        let cfg = GramerConfig {
            sim_threads: threads,
            ..base_config()
        };
        let cells: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new({
                let cfg = cfg.clone();
                move || {
                    run(&ba_graph(), &CliqueFinding::new(4).unwrap(), &cfg)
                        .to_json_value()
                        .to_string()
                }
            }),
            Box::new({
                let cfg = cfg.clone();
                move || {
                    run(&rmat_graph(), &MotifCounting::new(3).unwrap(), &cfg)
                        .to_json_value()
                        .to_string()
                }
            }),
        ];
        gramer::shard::run_cells(threads, cells)
    };
    let serial = run_matrix(1);
    let sharded = run_matrix(4);
    assert_eq!(
        serial, sharded,
        "sim_threads=4 diverged from sim_threads=1 on the golden cells"
    );
    assert_eq!(serial.len(), 2);
}

/// The two-lane fast access engine (ISSUE 4 tentpole) is the default;
/// `--access-path=exact` keeps the reference port/FIFO machinery. On
/// both golden workloads the two must produce *identical* reports down
/// to every memory statistic — the fast lanes are a host-side
/// optimisation, not a model change.
#[test]
fn exact_access_path_matches_fast_on_golden_workloads() {
    let fast_cfg = GramerConfig {
        access_path: AccessPath::Fast,
        ..base_config()
    };
    let exact_cfg = GramerConfig {
        access_path: AccessPath::Exact,
        ..base_config()
    };
    assert_eq!(GramerConfig::default().access_path, AccessPath::Fast);

    let ba = ba_graph();
    let cf = CliqueFinding::new(4).unwrap();
    assert_eq!(
        full_semantic_view(&run(&ba, &cf, &fast_cfg)),
        full_semantic_view(&run(&ba, &cf, &exact_cfg)),
        "BA(200,3) x CF(4): fast and exact access paths diverged"
    );

    let rmat = rmat_graph();
    let mc = MotifCounting::new(3).unwrap();
    assert_eq!(
        full_semantic_view(&run(&rmat, &mc, &fast_cfg)),
        full_semantic_view(&run(&rmat, &mc, &exact_cfg)),
        "R-MAT(2^8) x MC(3): fast and exact access paths diverged"
    );
}
