//! Golden semantics snapshots for the simulator.
//!
//! These tests lock the *simulated* quantities — cycles, steals, steps,
//! embeddings, and the per-size accepted/candidate counts — for two
//! small seeded workloads. Scheduler or probe rewrites in the hot path
//! must not shift any of these numbers: a performance change that moves
//! a golden value is a semantics change, not an optimisation, and must
//! be called out explicitly (by updating the constant and explaining
//! why in the commit).

use gramer::{preprocess, AccessPath, EpochMode, GramerConfig, RunReport, Scheduler, Simulator};
use gramer_graph::generate::{self, RmatParams};
use gramer_graph::CsrGraph;
use gramer_mining::apps::{CliqueFinding, MotifCounting};
use gramer_mining::EcmApp;

/// Renders every semantics-bearing field of a [`RunReport`] into one
/// comparable line. Wall-clock-derived fields are deliberately absent.
fn golden_summary(r: &RunReport) -> String {
    format!(
        "cycles={} steals={} steps={} dram={} embeddings={} candidates={} \
         accepted_by_size={:?} candidates_by_size={:?} pu_steps={:?}",
        r.cycles,
        r.steals,
        r.steps,
        r.dram_requests,
        r.result.embeddings,
        r.result.candidates_examined,
        r.result.accepted_by_size,
        r.result.candidates_by_size,
        r.pu_steps,
    )
}

/// Base config for the golden runs. The tier-1 matrix (`scripts/tier1.sh`)
/// re-runs this suite under every `scheduler` × `access_path` combination
/// via `GRAMER_SCHEDULER` / `GRAMER_ACCESS_PATH`, and once more with
/// `GRAMER_EPOCH=off` selecting the reference event-queue interleaving;
/// all are host-side choices, so the golden constants must hold
/// bit-for-bit under every combination.
fn base_config() -> GramerConfig {
    let mut cfg = GramerConfig::default();
    if let Ok(s) = std::env::var("GRAMER_SCHEDULER") {
        cfg.scheduler = s.parse().expect("GRAMER_SCHEDULER must be calendar|heap");
    }
    if let Ok(s) = std::env::var("GRAMER_ACCESS_PATH") {
        cfg.access_path = s.parse().expect("GRAMER_ACCESS_PATH must be fast|exact");
    }
    if let Ok(s) = std::env::var("GRAMER_EPOCH") {
        cfg.epoch = s.parse().expect("GRAMER_EPOCH must be on|off");
    }
    cfg
}

fn run<A: EcmApp>(graph: &CsrGraph, app: &A, cfg: &GramerConfig) -> RunReport {
    let pre = preprocess(graph, cfg).unwrap();
    Simulator::new(&pre, cfg.clone()).unwrap().run(app).unwrap()
}

fn ba_graph() -> CsrGraph {
    generate::barabasi_albert(200, 3, 11)
}

fn rmat_graph() -> CsrGraph {
    generate::rmat(
        8,
        2_000,
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        },
        7,
    )
}

/// BA(200,3) under 4-clique finding, default config.
const GOLDEN_BA_CF4: &str = "cycles=25565 steals=2507 steps=30891 dram=249 \
     embeddings=786 candidates=27416 accepted_by_size=[0, 0, 594, 174, 18] \
     candidates_by_size=[0, 0, 1188, 14330, 11898] \
     pu_steps=[11532, 8470, 2509, 2129, 1809, 1535, 1742, 1165]";

/// R-MAT(2^8, 2000 edges) under 3-motif counting, default config.
const GOLDEN_RMAT_MC3: &str = "cycles=48490 steals=6899 steps=92482 dram=444 \
     embeddings=34016 candidates=84066 accepted_by_size=[0, 0, 1261, 32755] \
     candidates_by_size=[0, 0, 2522, 81544] \
     pu_steps=[22897, 12808, 11697, 10478, 9735, 8921, 8850, 7096]";

#[test]
fn golden_ba200_cf4() {
    let report = run(&ba_graph(), &CliqueFinding::new(4).unwrap(), &base_config());
    assert_eq!(golden_summary(&report), GOLDEN_BA_CF4);
}

#[test]
fn golden_rmat_mc3() {
    let report = run(
        &rmat_graph(),
        &MotifCounting::new(3).unwrap(),
        &base_config(),
    );
    assert_eq!(golden_summary(&report), GOLDEN_RMAT_MC3);
}

/// Everything simulated in a [`RunReport`], including the memory-side
/// statistics and per-PU finish times that `golden_summary` leaves out.
/// Only wall-clock-derived fields (`preprocess_seconds`) are excluded.
fn full_semantic_view(r: &RunReport) -> String {
    format!(
        "{} pu_finish={:?} mem={:?} counts={:?} transfer_seconds={}",
        golden_summary(r),
        r.pu_finish,
        r.mem,
        r.result.counts,
        r.transfer_seconds,
    )
}

/// The calendar queue is the default scheduler; the binary heap is kept
/// as the reference implementation. On both golden workloads the two
/// must produce *identical* reports — scheduling is a host-side choice,
/// not a simulated one (ISSUE 3 tentpole invariant).
#[test]
fn heap_scheduler_matches_calendar_on_golden_workloads() {
    let cal_cfg = GramerConfig {
        scheduler: Scheduler::Calendar,
        ..base_config()
    };
    let heap_cfg = GramerConfig {
        scheduler: Scheduler::Heap,
        ..base_config()
    };

    let ba = ba_graph();
    let cf = CliqueFinding::new(4).unwrap();
    assert_eq!(
        full_semantic_view(&run(&ba, &cf, &cal_cfg)),
        full_semantic_view(&run(&ba, &cf, &heap_cfg)),
        "BA(200,3) x CF(4): heap and calendar schedulers diverged"
    );

    let rmat = rmat_graph();
    let mc = MotifCounting::new(3).unwrap();
    assert_eq!(
        full_semantic_view(&run(&rmat, &mc, &cal_cfg)),
        full_semantic_view(&run(&rmat, &mc, &heap_cfg)),
        "R-MAT(2^8) x MC(3): heap and calendar schedulers diverged"
    );
}

/// Runs `app` starting from a `.gra` artifact round-trip of the
/// preprocessed graph instead of the direct [`preprocess`] result.
fn run_via_artifact<A: EcmApp>(graph: &CsrGraph, app: &A, cfg: &GramerConfig) -> RunReport {
    let pre = preprocess(graph, cfg).unwrap();
    let bytes = gramer_graph::artifact::encode(&pre.artifact_contents(0)).unwrap();
    let art = gramer_graph::GraphArtifact::from_bytes(bytes).unwrap();
    let pre = gramer::Preprocessed::from_artifact(&art, cfg).unwrap();
    Simulator::new(&pre, cfg.clone()).unwrap().run(app).unwrap()
}

/// The `.gra` artifact path (ISSUE 6 tentpole) must be invisible in the
/// results: a run resumed from an artifact produces a [`RunReport`]
/// whose serialized JSON is byte-identical to the edge-list path's, on
/// both golden workloads. Runs under the full scheduler × access-path
/// matrix via `scripts/tier1.sh golden`.
#[test]
fn artifact_path_reports_are_bit_identical() {
    let cfg = base_config();

    let ba = ba_graph();
    let cf = CliqueFinding::new(4).unwrap();
    assert_eq!(
        run(&ba, &cf, &cfg).to_json_value().to_string(),
        run_via_artifact(&ba, &cf, &cfg).to_json_value().to_string(),
        "BA(200,3) x CF(4): artifact path diverged from edge-list path"
    );

    let rmat = rmat_graph();
    let mc = MotifCounting::new(3).unwrap();
    assert_eq!(
        run(&rmat, &mc, &cfg).to_json_value().to_string(),
        run_via_artifact(&rmat, &mc, &cfg)
            .to_json_value()
            .to_string(),
        "R-MAT(2^8) x MC(3): artifact path diverged from edge-list path"
    );
}

/// The epoch-batched engine (ISSUE 8 tentpole) is the default inner
/// loop; `--epoch=off` keeps the reference event-queue interleaving. On
/// both golden workloads the two must produce *identical* serialized
/// reports — epoch batching is a host-side engine choice, not a model
/// change. (The randomized flavour is `epoch_matches_interleaved` in
/// `tests/properties.rs`.)
#[test]
fn epoch_engine_matches_interleaved_on_golden_workloads() {
    let epoch_cfg = GramerConfig {
        epoch: EpochMode::On,
        ..base_config()
    };
    let interleaved_cfg = GramerConfig {
        epoch: EpochMode::Off,
        ..base_config()
    };
    assert_eq!(GramerConfig::default().epoch, EpochMode::On);

    let ba = ba_graph();
    let cf = CliqueFinding::new(4).unwrap();
    assert_eq!(
        run(&ba, &cf, &epoch_cfg).to_json_value().to_string(),
        run(&ba, &cf, &interleaved_cfg).to_json_value().to_string(),
        "BA(200,3) x CF(4): epoch engine diverged from interleaved engine"
    );

    let rmat = rmat_graph();
    let mc = MotifCounting::new(3).unwrap();
    assert_eq!(
        run(&rmat, &mc, &epoch_cfg).to_json_value().to_string(),
        run(&rmat, &mc, &interleaved_cfg)
            .to_json_value()
            .to_string(),
        "R-MAT(2^8) x MC(3): epoch engine diverged from interleaved engine"
    );
}

/// Running the two golden workloads as independent cells on a sharded
/// pool (`sim_threads=4`) must yield byte-identical serialized reports,
/// in the same order, as the serial `sim_threads=1` path — host
/// parallelism across cells never touches a simulated quantity, and
/// result order is cell order by construction (see `gramer::shard`).
#[test]
fn sharded_cells_reports_are_bit_identical_to_serial() {
    let run_matrix = |threads: usize| -> Vec<String> {
        let cfg = GramerConfig {
            sim_threads: threads,
            ..base_config()
        };
        let cells: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new({
                let cfg = cfg.clone();
                move || {
                    run(&ba_graph(), &CliqueFinding::new(4).unwrap(), &cfg)
                        .to_json_value()
                        .to_string()
                }
            }),
            Box::new({
                let cfg = cfg.clone();
                move || {
                    run(&rmat_graph(), &MotifCounting::new(3).unwrap(), &cfg)
                        .to_json_value()
                        .to_string()
                }
            }),
        ];
        gramer::shard::run_cells(threads, cells)
    };
    let serial = run_matrix(1);
    let sharded = run_matrix(4);
    assert_eq!(
        serial, sharded,
        "sim_threads=4 diverged from sim_threads=1 on the golden cells"
    );
    assert_eq!(serial.len(), 2);
}

/// The two-lane fast access engine (ISSUE 4 tentpole) is the default;
/// `--access-path=exact` keeps the reference port/FIFO machinery. On
/// both golden workloads the two must produce *identical* reports down
/// to every memory statistic — the fast lanes are a host-side
/// optimisation, not a model change.
#[test]
fn exact_access_path_matches_fast_on_golden_workloads() {
    let fast_cfg = GramerConfig {
        access_path: AccessPath::Fast,
        ..base_config()
    };
    let exact_cfg = GramerConfig {
        access_path: AccessPath::Exact,
        ..base_config()
    };
    assert_eq!(GramerConfig::default().access_path, AccessPath::Fast);

    let ba = ba_graph();
    let cf = CliqueFinding::new(4).unwrap();
    assert_eq!(
        full_semantic_view(&run(&ba, &cf, &fast_cfg)),
        full_semantic_view(&run(&ba, &cf, &exact_cfg)),
        "BA(200,3) x CF(4): fast and exact access paths diverged"
    );

    let rmat = rmat_graph();
    let mc = MotifCounting::new(3).unwrap();
    assert_eq!(
        full_semantic_view(&run(&rmat, &mc, &fast_cfg)),
        full_semantic_view(&run(&rmat, &mc, &exact_cfg)),
        "R-MAT(2^8) x MC(3): fast and exact access paths diverged"
    );
}
