//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build environment has no access to crates.io, so this crate keeps
//! the `crates/bench/benches/*.rs` sources compiling and *runnable* with
//! a plain timing loop: each benchmark is warmed up once, then iterated
//! until ~`MEASURE_MS` of wall-clock accumulates (at least
//! `sample_size` iterations), and the mean per-iteration time is printed.
//! No statistics, plots, or HTML reports — run the real criterion on a
//! networked machine if confidence intervals matter.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Target measurement window per benchmark.
const MEASURE_MS: u64 = 300;

/// Whether `GRAMER_BENCH_SMOKE` is set: every benchmark then runs its
/// closure exactly once with no warm-up and reports that single timing.
/// CI (`scripts/tier1.sh`) uses this to prove each bench still compiles
/// and runs without paying measurement-quality iteration counts.
fn smoke_mode() -> bool {
    std::env::var_os("GRAMER_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Opaque value barrier, mirroring `criterion::black_box`.
///
/// Without inline assembly the strongest safe barrier is a volatile-ish
/// read through `std::hint::black_box` (stable since 1.66).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier, e.g. `BenchmarkId::new("simulate", "3-CF")`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display into one label.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut label = function.into();
        let _ = write!(label, "/{parameter}");
        BenchmarkId { label }
    }

    /// A parameter-only identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to the benchmark closure; drives the timing loop.
pub struct Bencher {
    total: Duration,
    iters: u64,
    min_iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly and records the mean.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if smoke_mode() {
            let start = Instant::now();
            black_box(f());
            self.total = start.elapsed();
            self.iters = 1;
            return;
        }
        // Warm-up (not measured).
        black_box(f());
        let budget = Duration::from_millis(MEASURE_MS);
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.min_iters || start.elapsed() < budget {
            black_box(f());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on iterations per benchmark (criterion's semantics are
    /// statistical samples; here it is a simple floor).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut f = f;
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            min_iters: self.sample_size,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "bench {:<40} {:>14} ({} iters)",
            format!("{}/{}", self.name, id.label),
            format_ns(mean_ns),
            b.iters
        );
        self
    }

    /// Ends the group (no-op beyond parity with criterion).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 1,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: "bench".into(),
            sample_size: 1,
            _parent: self,
        };
        g.bench_function(id, f);
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Mirrors `criterion_group!`: bundles benchmark functions into one
/// callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts() {
        // Covers smoke mode in the same test: env vars are process-wide,
        // so toggling it in a parallel test would race this one.
        std::env::remove_var("GRAMER_BENCH_SMOKE");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // warm-up + at least sample_size measured iterations
        assert!(runs >= 4, "ran only {runs} times");

        std::env::set_var("GRAMER_BENCH_SMOKE", "1");
        let mut smoke_runs = 0u64;
        g.bench_function("smoke", |b| {
            b.iter(|| {
                smoke_runs += 1;
            })
        });
        std::env::remove_var("GRAMER_BENCH_SMOKE");
        assert_eq!(smoke_runs, 1, "smoke mode must run exactly once");
    }

    #[test]
    fn id_formats() {
        let id = BenchmarkId::new("f", 42);
        assert_eq!(id.label, "f/42");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(1.5e9), "1.500 s");
        assert_eq!(format_ns(2.5e6), "2.500 ms");
        assert_eq!(format_ns(500.0), "500 ns");
    }
}
