//! Read-only memory-mapped bytes with an aligned owned fallback, plus
//! little-endian typed views — the in-repo stand-in for the small subset
//! of `memmap2` + `bytemuck` that the `.gra` artifact loader
//! (`gramer_graph::artifact`) needs. Kept as a shim because the build
//! environment is offline (same approach as `shims/rand`).
//!
//! Two pieces:
//!
//! * [`Bytes`] — an immutable byte buffer backed either by a private
//!   read-only `mmap(2)` of a file (zero-copy: the kernel pages data in
//!   on demand and the file is never deserialized) or, when mapping is
//!   unavailable or refused, by an owned allocation that is always
//!   8-byte aligned. Either way the buffer's base address is at least
//!   8-byte aligned, which is what makes the typed views below work on
//!   every artifact section (the `.gra` format aligns all sections to
//!   8 bytes from the start of the file).
//! * [`view_u16`] / [`view_u32`] / [`view_u64`] — reinterpret a byte
//!   slice as a slice of little-endian integers without copying.
//!   They return `None` (callers then decode element-by-element) when
//!   the host is big-endian, the pointer is misaligned, or the length
//!   is not a multiple of the element size — so a `Some` result is
//!   always a sound, correctly-decoded view.
//!
//! This crate is the only place the artifact pipeline uses `unsafe`;
//! `gramer-graph` itself stays `#![forbid(unsafe_code)]`.
//!
//! # Example
//!
//! ```
//! let bytes = gramer_mmap::Bytes::copied_from(&42u64.to_le_bytes());
//! let words = gramer_mmap::view_u64(&bytes).expect("aligned little-endian host");
//! assert_eq!(words, &[42]);
//! ```

#![warn(missing_docs)]

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

/// An immutable byte buffer: memory-mapped when possible, owned (and
/// 8-byte aligned) otherwise. Dereferences to `&[u8]`.
#[derive(Debug)]
pub struct Bytes {
    storage: Storage,
    len: usize,
}

#[derive(Debug)]
enum Storage {
    #[cfg(unix)]
    Mapped(unix_mmap::Map),
    /// `Vec<u64>` backing guarantees 8-byte alignment of the base
    /// pointer, so the typed views work on the fallback path too.
    Owned(Vec<u64>),
}

impl Bytes {
    /// Opens `path` read-only, preferring a zero-copy memory map and
    /// falling back to an aligned in-memory read if mapping fails (or
    /// `force_copy` is set, or the platform has no `mmap`).
    ///
    /// # Errors
    ///
    /// Any I/O error opening or reading the file.
    pub fn load(path: &Path, force_copy: bool) -> io::Result<Bytes> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        #[cfg(unix)]
        if !force_copy && len > 0 {
            if let Ok(map) = unix_mmap::Map::map_readonly(&file, len) {
                return Ok(Bytes {
                    storage: Storage::Mapped(map),
                    len,
                });
            }
        }
        let _ = force_copy; // non-unix: always copied
        let mut buf = vec![0u64; len.div_ceil(8)];
        file.read_exact(&mut as_bytes_mut(&mut buf)[..len])?;
        Ok(Bytes {
            storage: Storage::Owned(buf),
            len,
        })
    }

    /// An owned, aligned copy of `data` (for in-memory artifacts and
    /// tests; never memory-mapped).
    pub fn copied_from(data: &[u8]) -> Bytes {
        let mut buf = vec![0u64; data.len().div_ceil(8)];
        as_bytes_mut(&mut buf)[..data.len()].copy_from_slice(data);
        Bytes {
            storage: Storage::Owned(buf),
            len: data.len(),
        }
    }

    /// Whether this buffer is a live memory map (as opposed to an owned
    /// copy).
    pub fn is_mapped(&self) -> bool {
        match &self.storage {
            #[cfg(unix)]
            Storage::Mapped(_) => true,
            Storage::Owned(_) => false,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.storage {
            #[cfg(unix)]
            Storage::Mapped(m) => m.as_slice(),
            // SAFETY-free: plain u64 -> u8 reinterpretation is always
            // valid; `len` never exceeds the allocation (enforced at
            // construction).
            Storage::Owned(v) => &as_bytes(v)[..self.len],
        }
    }
}

fn as_bytes(words: &[u64]) -> &[u8] {
    // SAFETY: u8 has alignment 1 and no invalid bit patterns; the
    // region is exactly the words' allocation.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
}

fn as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
    // SAFETY: as above, plus exclusive access via the &mut borrow.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8) }
}

macro_rules! le_view {
    ($name:ident, $ty:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Returns `None` when the host is big-endian, `bytes` is not
        /// aligned to the element size, or its length is not a multiple
        /// of it — callers must then decode with `from_le_bytes`.
        pub fn $name(bytes: &[u8]) -> Option<&[$ty]> {
            if cfg!(target_endian = "big") {
                return None;
            }
            let size = std::mem::size_of::<$ty>();
            if bytes.len() % size != 0
                || bytes.as_ptr().align_offset(std::mem::align_of::<$ty>()) != 0
            {
                return None;
            }
            // SAFETY: alignment and size checked above; integer types
            // have no invalid bit patterns; on little-endian hosts the
            // in-memory representation IS the serialized representation.
            Some(unsafe {
                std::slice::from_raw_parts(bytes.as_ptr().cast::<$ty>(), bytes.len() / size)
            })
        }
    };
}

le_view!(
    view_u16,
    u16,
    "Reinterprets little-endian bytes as a `&[u16]` without copying."
);
le_view!(
    view_u32,
    u32,
    "Reinterprets little-endian bytes as a `&[u32]` without copying."
);
le_view!(
    view_u64,
    u64,
    "Reinterprets little-endian bytes as a `&[u64]` without copying."
);

#[cfg(unix)]
mod unix_mmap {
    //! Minimal read-only `mmap(2)` wrapper. Linked against the platform
    //! libc the binary already uses; no external crate involved.
    //!
    //! Caveat (shared with every mmap library): the mapping's contents
    //! alias the file, so another process truncating the file while it
    //! is mapped can fault reads. Artifact files are written atomically
    //! (temp + rename) precisely so readers never observe a shrinking
    //! file.

    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            // 64-bit platforms only (off_t == i64); the workspace does
            // not target 32-bit hosts.
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping of one file, unmapped on drop.
    #[derive(Debug)]
    pub struct Map {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is read-only and owned exclusively by this
    // struct until munmap in Drop.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub fn map_readonly(file: &File, len: usize) -> io::Result<Map> {
            debug_assert!(len > 0, "mmap of an empty file is unspecified");
            // SAFETY: null addr lets the kernel pick a page-aligned
            // base; PROT_READ + MAP_PRIVATE never mutates the file.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: the mapping covers exactly `len` readable bytes
            // for the lifetime of self.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: ptr/len are exactly what mmap returned.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copied_bytes_roundtrip_and_views() {
        let data: Vec<u8> = (0..48u8).collect();
        let b = Bytes::copied_from(&data);
        assert_eq!(&*b, data.as_slice());
        assert!(!b.is_mapped());
        if cfg!(target_endian = "little") {
            let v32 = view_u32(&b).unwrap();
            assert_eq!(v32.len(), 12);
            assert_eq!(v32[0], u32::from_le_bytes([0, 1, 2, 3]));
            let v64 = view_u64(&b).unwrap();
            assert_eq!(v64.len(), 6);
            let v16 = view_u16(&b).unwrap();
            assert_eq!(v16.len(), 24);
        }
    }

    #[test]
    fn views_reject_bad_lengths() {
        let b = Bytes::copied_from(&[1, 2, 3]);
        assert!(view_u32(&b).is_none());
        assert!(view_u64(&b).is_none());
        assert!(view_u16(&b).is_none());
    }

    #[test]
    fn views_reject_misaligned() {
        let b = Bytes::copied_from(&[0u8; 16]);
        // Offset by one byte: base alignment is 8, so +1 is misaligned
        // for every element width > 1.
        let sub = &b[1..9];
        assert!(view_u32(sub).is_none() || cfg!(target_endian = "big"));
    }

    #[test]
    fn odd_length_copies_preserve_exact_len() {
        let data = [7u8; 13];
        let b = Bytes::copied_from(&data);
        assert_eq!(b.len(), 13);
        assert_eq!(&*b, &data[..]);
    }

    #[test]
    fn load_maps_and_copies_identically() {
        let dir = std::env::temp_dir().join(format!("gramer-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        let payload: Vec<u8> = (0..255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();

        let mapped = Bytes::load(&path, false).unwrap();
        let copied = Bytes::load(&path, true).unwrap();
        assert!(!copied.is_mapped());
        assert_eq!(&*mapped, payload.as_slice());
        assert_eq!(&*mapped, &*copied);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_empty_file_is_owned_and_empty() {
        let dir = std::env::temp_dir().join(format!("gramer-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let b = Bytes::load(&path, false).unwrap();
        assert!(b.is_empty());
        assert!(!b.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }
}
