//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny, dependency-free implementation of the surface it
//! needs: [`rngs::StdRng`], the [`Rng`]/[`SeedableRng`] traits, and
//! [`distributions::Uniform`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic for a given seed, which is all the
//! reproduction requires (every generated "dataset" is pinned by seed).
//!
//! The streams differ numerically from upstream `rand`'s `StdRng`
//! (ChaCha12), so regenerated graphs differ from runs made with the real
//! crate; every figure/table in this repo is regenerated from scratch, so
//! only *internal* determinism matters.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types `gen_range` and [`distributions::Uniform`] support.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` is the caller's contract.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(hi > lo, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Lemire's multiply-shift method: accept the draw unless
                // its low half falls in the bias zone (2^64 mod span).
                let zone = span.wrapping_neg() % span;
                loop {
                    let m = (rng.next_u64() as u128) * (span as u128);
                    if (m as u64) >= zone {
                        return lo.wrapping_add((m >> 64) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if hi == <$t>::MAX {
                    // Avoid hi + 1 overflow by shifting the window down.
                    if lo == 0 {
                        // Full type range: raw bits are already uniform.
                        let mut draw = rng.next_u64() as $t;
                        // For narrow types the cast truncates, which keeps
                        // uniformity; for u64/usize it is the identity.
                        draw &= <$t>::MAX;
                        return draw;
                    }
                    return <$t>::sample_half_open(rng, lo - 1, hi) + 1;
                }
                <$t>::sample_half_open(rng, lo, hi + 1)
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over the type's natural range;
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure — neither caller here needs
    /// that.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same xoshiro instance here.
    pub type SmallRng = StdRng;
}

pub mod distributions {
    //! Distribution types (`Uniform` only — the subset the workspace uses).

    use super::{RngCore, SampleUniform};

    /// A distribution that can be sampled with an [`RngCore`].
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "empty uniform range");
            Uniform { lo, hi }
        }
    }

    impl<T: SampleUniform> From<core::ops::Range<T>> for Uniform<T> {
        fn from(r: core::ops::Range<T>) -> Self {
            Uniform::new(r.start, r.end)
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.lo, self.hi)
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(1u32..=4);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn uniform_distribution_covers_range() {
        let mut r = StdRng::seed_from_u64(3);
        let d = Uniform::from(0u32..4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[d.sample(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
